package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPlatformsValidate(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPlatformDimensions(t *testing.T) {
	cases := []struct {
		name            string
		contexts, cores int
		sockets, smt    int
	}{
		{"Ivy", 40, 20, 2, 2},
		{"Westmere", 160, 80, 8, 2},
		{"Haswell", 96, 48, 4, 2},
		{"Opteron", 48, 48, 8, 1},
		{"SPARC", 256, 32, 4, 8},
	}
	for _, c := range cases {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumContexts() != c.contexts || p.NumCores() != c.cores ||
			p.Sockets != c.sockets || p.SMT != c.smt {
			t.Errorf("%s: got %d ctx / %d cores / %d sockets / %d smt",
				c.name, p.NumContexts(), p.NumCores(), p.Sockets, p.SMT)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("PDP-11"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

// TestIvyNumbering checks the Intel-halves numbering of Figure 6: contexts
// 0 and 20 are SMT siblings on the 40-context Ivy; 0..9 are socket 0.
func TestIvyNumbering(t *testing.T) {
	p := Ivy()
	if p.CoreOf(0) != p.CoreOf(20) {
		t.Error("ctx 0 and 20 should share a core on Ivy")
	}
	if p.CoreOf(0) == p.CoreOf(1) {
		t.Error("ctx 0 and 1 should be different cores")
	}
	if p.SocketOf(9) != 0 || p.SocketOf(10) != 1 {
		t.Error("ctx 9 should be socket 0, ctx 10 socket 1")
	}
	if p.SMTIndexOf(0) != 0 || p.SMTIndexOf(20) != 1 {
		t.Error("SMT indices wrong")
	}
}

// TestSPARCNumbering checks the consecutive numbering of Figure 3:
// contexts 0..7 share core 0; 64 contexts per socket.
func TestSPARCNumbering(t *testing.T) {
	p := SPARC()
	for c := 0; c < 8; c++ {
		if p.CoreOf(c) != 0 {
			t.Fatalf("ctx %d should be core 0 on SPARC", c)
		}
	}
	if p.CoreOf(8) != 1 {
		t.Error("ctx 8 should be core 1")
	}
	if p.SocketOf(63) != 0 || p.SocketOf(64) != 1 {
		t.Error("socket boundary should be at ctx 64")
	}
}

// Property: ContextOf is the inverse of (CoreOf, SMTIndexOf) on every
// platform.
func TestNumberingRoundTrip(t *testing.T) {
	for _, p := range Platforms() {
		for ctx := 0; ctx < p.NumContexts(); ctx++ {
			if got := p.ContextOf(p.CoreOf(ctx), p.SMTIndexOf(ctx)); got != ctx {
				t.Fatalf("%s: ContextOf(CoreOf, SMTIndexOf) of %d = %d", p.Name, ctx, got)
			}
		}
	}
}

// TestOpteronInterconnect checks Figure 1's structure: socket 0 reaches its
// MCM sibling (1) at 197 cycles, the even dies (2, 4, 6) at 217, and the
// remaining odd dies (3, 5, 7) over two hops at 300.
func TestOpteronInterconnect(t *testing.T) {
	p := Opteron()
	if l := p.SocketLatency(0, 1); l != 197 {
		t.Errorf("0-1 latency = %d, want 197", l)
	}
	for _, s := range []int{2, 4, 6} {
		if l := p.SocketLatency(0, s); l != 217 {
			t.Errorf("0-%d latency = %d, want 217", s, l)
		}
	}
	for _, s := range []int{3, 5, 7} {
		if l := p.SocketLatency(0, s); l != 300 {
			t.Errorf("0-%d latency = %d, want 300 (2 hops)", s, l)
		}
		if d := p.SocketDistance(0, s); d != 2 {
			t.Errorf("0-%d distance = %d, want 2", s, d)
		}
	}
}

// TestOpteronMemoryShape checks Figure 1a: local node 143 cy / 10.9 GB/s,
// MCM sibling 247 cy / 5.3 GB/s, one-hop ~262, two-hop ~343.
func TestOpteronMemoryShape(t *testing.T) {
	p := Opteron()
	if p.MemLat[0][0] != 143 || p.MemBW[0][0] != 10.9 {
		t.Errorf("local memory = %d cy / %g GB/s", p.MemLat[0][0], p.MemBW[0][0])
	}
	if p.MemLat[0][1] != 247 || p.MemBW[0][1] != 5.3 {
		t.Errorf("sibling memory = %d cy / %g GB/s", p.MemLat[0][1], p.MemBW[0][1])
	}
	for _, n := range []int{2, 4, 6} {
		if p.MemLat[0][n] < 255 || p.MemLat[0][n] > 270 {
			t.Errorf("one-hop node %d latency = %d", n, p.MemLat[0][n])
		}
	}
	for _, n := range []int{3, 5, 7} {
		if p.MemLat[0][n] < 335 || p.MemLat[0][n] > 350 {
			t.Errorf("two-hop node %d latency = %d", n, p.MemLat[0][n])
		}
	}
}

// TestOpteronOSMappingWrong reproduces footnote 1: the OS's node mapping
// disagrees with the hardware truth.
func TestOpteronOSMappingWrong(t *testing.T) {
	p := Opteron()
	diff := 0
	for s := 0; s < p.Sockets; s++ {
		if p.OSLocalNode(s) != p.LocalNode(s) {
			diff++
		}
	}
	if diff != p.Sockets {
		t.Errorf("OS mapping differs for %d sockets, want all %d", diff, p.Sockets)
	}
}

// TestWestmereTwoHop checks Figure 2b: direct pairs at 341, the rest at 458
// ("lvl 4"), and socket 0's local node is node 4 (Figure 2a).
func TestWestmereTwoHop(t *testing.T) {
	p := Westmere()
	if l := p.SocketLatency(0, 1); l != 341 {
		t.Errorf("0-1 = %d, want 341", l)
	}
	if l := p.SocketLatency(0, 4); l != 341 {
		t.Errorf("0-4 = %d, want 341", l)
	}
	if l := p.SocketLatency(0, 2); l != 458 {
		t.Errorf("0-2 = %d, want 458 (2 hops)", l)
	}
	if p.LocalNode(0) != 4 {
		t.Errorf("local node of socket 0 = %d, want 4", p.LocalNode(0))
	}
	if p.MemLat[0][4] != 369 {
		t.Errorf("socket 0 local latency = %d, want 369", p.MemLat[0][4])
	}
}

func TestPairLatencyLevels(t *testing.T) {
	p := Ivy()
	if l := p.PairLatency(0, 20); l != 28 {
		t.Errorf("SMT pair = %d, want 28", l)
	}
	if l := p.PairLatency(0, 0); l != 0 {
		t.Errorf("self = %d, want 0", l)
	}
	if l := p.PairLatency(0, 1); l < 96 || l > 128 {
		t.Errorf("intra pair = %d, want in [96,128]", l)
	}
	if l := p.PairLatency(0, 10); l < 300 || l > 316 {
		t.Errorf("cross pair = %d, want ~308", l)
	}
	// Symmetry.
	for _, pair := range [][2]int{{0, 1}, {3, 17}, {0, 39}, {5, 25}} {
		if p.PairLatency(pair[0], pair[1]) != p.PairLatency(pair[1], pair[0]) {
			t.Errorf("PairLatency not symmetric for %v", pair)
		}
	}
}

// TestPairLatencySeparation: on every platform the latency levels must be
// separable by clustering — the property MCTOP-ALG depends on.
func TestPairLatencySeparation(t *testing.T) {
	for _, p := range Platforms() {
		var all []int64
		n := p.NumContexts()
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				all = append(all, p.PairLatency(x, y))
			}
		}
		cl := stats.Cluster(all, stats.ClusterOptions{RelGap: 0.04, AbsGap: 10})
		// Count the distinct ground-truth levels.
		levels := map[int64]bool{}
		if p.SMT > 1 {
			levels[p.SameCoreLat] = true
		}
		levels[p.IntraSocketLat] = true
		for _, l := range p.Links {
			levels[l.Lat] = true
		}
		hasTwoHop := false
		for a := 0; a < p.Sockets && !hasTwoHop; a++ {
			for b := a + 1; b < p.Sockets; b++ {
				if p.SocketDistance(a, b) == 2 {
					hasTwoHop = true
					break
				}
			}
		}
		if hasTwoHop {
			levels[p.TwoHopLat] = true
		}
		if len(cl) != len(levels) {
			t.Errorf("%s: clustering found %d levels (%v), ground truth has %d (%v)",
				p.Name, len(cl), cl, len(levels), levels)
		}
	}
}

// TestLockStepMeasurement runs the Figure 5 protocol on the simulator and
// checks that the median of repeated measurements recovers the ground-truth
// pair latency.
func TestLockStepMeasurement(t *testing.T) {
	p := Ivy()
	p.DVFS = false // isolate the protocol from the ramp in this test
	s, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(xCtx, yCtx int) int64 {
		x, _ := s.NewThread(xCtx)
		y, _ := s.NewThread(yCtx)
		const line = 12345
		const reps = 200
		vals := make([]int64, 0, reps)
		for i := 0; i < reps; i++ {
			s.Barrier(x, y)
			y.CAS(line)
			s.Barrier(x, y)
			start := x.Rdtsc()
			x.CAS(line)
			end := x.Rdtsc()
			vals = append(vals, end-start-p.RdtscOverhead)
		}
		return stats.Median(vals)
	}
	cases := []struct {
		x, y int
	}{{0, 20}, {0, 1}, {0, 10}, {5, 37}}
	for _, c := range cases {
		got := measure(c.x, c.y)
		want := p.PairLatency(c.x, c.y)
		if d := got - want; d < -4 || d > 4 {
			t.Errorf("measured (%d,%d) = %d, ground truth %d", c.x, c.y, got, want)
		}
	}
}

// TestDVFSRamp: spin durations shrink as a cold core ramps to max
// frequency, then stabilize — the signal libmctop's DVFS wait looks for.
func TestDVFSRamp(t *testing.T) {
	p := Ivy()
	s, err := New(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := s.NewThread(0)
	const unit = 10_000_000
	first := s.SpinSolo(th, unit)
	var last int64
	for i := 0; i < 30; i++ {
		last = s.SpinSolo(th, unit)
	}
	if first <= last {
		t.Errorf("cold spin (%d) should be slower than warm spin (%d)", first, last)
	}
	// Warm durations stabilize near the nominal unit.
	again := s.SpinSolo(th, unit)
	if d := again - last; d < -100 || d > 100 {
		t.Errorf("warm spins unstable: %d vs %d", again, last)
	}
	// Re-pinning resets the ramp.
	if err := th.Pin(1); err != nil {
		t.Fatal(err)
	}
	cold := s.SpinSolo(th, unit)
	if cold <= last+100 {
		t.Errorf("after migration spin = %d, expected cold (> %d)", cold, last)
	}
}

// TestSMTDetection: co-running a spin loop on SMT siblings dilates it;
// co-running on separate cores does not.
func TestSMTDetection(t *testing.T) {
	p := Ivy()
	p.DVFS = false
	s, _ := New(p, 3)
	a, _ := s.NewThread(0)
	b, _ := s.NewThread(20) // sibling of 0
	c, _ := s.NewThread(1)  // different core
	const unit = 100_000
	solo := s.SpinSolo(a, unit)
	d1, d2 := s.SpinTogether(a, b, unit)
	if float64(d1) < 1.5*float64(solo) || float64(d2) < 1.5*float64(solo) {
		t.Errorf("SMT siblings: %d/%d vs solo %d — expected ~1.9x dilation", d1, d2, solo)
	}
	d1, d3 := s.SpinTogether(a, c, unit)
	if float64(d1) > 1.2*float64(solo) || float64(d3) > 1.2*float64(solo) {
		t.Errorf("separate cores: %d/%d vs solo %d — expected no dilation", d1, d3, solo)
	}
}

// TestFig7PowerNumbers reproduces the power lines of Figure 7: placing 30
// threads CON_HWC on Ivy uses all 20 contexts of socket 0 and 10 of socket
// 1, for 66.7 + 43.4 = 110.1 W package power and 111.9 + 88.7 = 200.6 W
// with DRAM.
func TestFig7PowerNumbers(t *testing.T) {
	p := Ivy()
	var ctxs []int
	// All 20 contexts of socket 0: cores 0..9, both SMT contexts.
	for core := 0; core < 10; core++ {
		ctxs = append(ctxs, p.ContextOf(core, 0), p.ContextOf(core, 1))
	}
	// 10 contexts of socket 1, compactly: cores 10..14, both contexts.
	for core := 10; core < 15; core++ {
		ctxs = append(ctxs, p.ContextOf(core, 0), p.ContextOf(core, 1))
	}
	per, total := p.PowerEstimate(ctxs, false)
	if math.Abs(per[0]-66.7) > 0.05 || math.Abs(per[1]-43.4) > 0.05 {
		t.Errorf("per-socket power = %.1f/%.1f, want 66.7/43.4", per[0], per[1])
	}
	if math.Abs(total-110.1) > 0.1 {
		t.Errorf("total = %.1f, want 110.1", total)
	}
	perD, totalD := p.PowerEstimate(ctxs, true)
	if math.Abs(perD[0]-111.9) > 0.1 || math.Abs(perD[1]-88.7) > 0.1 {
		t.Errorf("per-socket with DRAM = %.1f/%.1f, want 111.9/88.7", perD[0], perD[1])
	}
	if math.Abs(totalD-200.6) > 0.2 {
		t.Errorf("total with DRAM = %.1f, want 200.6", totalD)
	}
}

// TestFig7Bandwidth reproduces Figure 7's bandwidth lines: socket local
// bandwidths 15.9 + 8.37 = 24.27 GB/s aggregate, proportions 0.655/0.345.
func TestFig7Bandwidth(t *testing.T) {
	p := Ivy()
	bw0 := p.MemBW[0][p.LocalNode(0)]
	bw1 := p.MemBW[1][p.LocalNode(1)]
	sum := bw0 + bw1
	if math.Abs(sum-24.27) > 0.05 {
		t.Errorf("aggregate local bandwidth = %.2f, want ~24.27", sum)
	}
	if math.Abs(bw0/sum-0.655) > 0.005 || math.Abs(bw1/sum-0.345) > 0.005 {
		t.Errorf("proportions = %.3f/%.3f, want 0.655/0.345", bw0/sum, bw1/sum)
	}
}

func TestStreamBandwidthSaturation(t *testing.T) {
	p := Ivy()
	s, _ := New(p, 4)
	// One core streams at CoreStreamBW.
	if bw := s.StreamBandwidth([]int{0}, 0); bw != p.CoreStreamBW {
		t.Errorf("1-core stream = %g, want %g", bw, p.CoreStreamBW)
	}
	// SMT siblings share one core's streaming capacity.
	if bw := s.StreamBandwidth([]int{0, 20}, 0); bw != p.CoreStreamBW {
		t.Errorf("sibling stream = %g, want %g", bw, p.CoreStreamBW)
	}
	// Enough cores saturate the node.
	ctxs := []int{0, 1, 2, 3, 4, 5}
	if bw := s.StreamBandwidth(ctxs, 0); bw != p.MemBW[0][0] {
		t.Errorf("6-core stream = %g, want node cap %g", bw, p.MemBW[0][0])
	}
	// Remote streaming is link-capped and never exceeds the node itself.
	remote := s.StreamBandwidth([]int{10, 11, 12, 13, 14}, 0)
	if remote > p.MemBW[1][0] || remote > p.MemBW[0][0] {
		t.Errorf("remote stream = %g exceeds caps", remote)
	}
}

func TestMemRandomAccessLatency(t *testing.T) {
	p := Opteron() // no DVFS: exact expectations
	s, _ := New(p, 5)
	th, _ := s.NewThread(0)
	n := 1000
	total := th.MemRandomAccess(0, n)
	per := float64(total) / float64(n)
	if per < 140 || per > 147 {
		t.Errorf("local random access = %.1f cy, want ~143", per)
	}
	total = th.MemRandomAccess(3, n)
	per = float64(total) / float64(n)
	if per < 338 || per > 350 {
		t.Errorf("two-hop random access = %.1f cy, want ~343", per)
	}
}

func TestCacheWorkingSetSteps(t *testing.T) {
	p := Opteron()
	s, _ := New(p, 6)
	th, _ := s.NewThread(0)
	n := 500
	l1 := float64(th.CacheWorkingSetLoads(16<<10, n)) / float64(n)
	l2 := float64(th.CacheWorkingSetLoads(256<<10, n)) / float64(n)
	llc := float64(th.CacheWorkingSetLoads(2<<20, n)) / float64(n)
	mem := float64(th.CacheWorkingSetLoads(64<<20, n)) / float64(n)
	if !(l1 < l2 && l2 < llc && llc < mem) {
		t.Errorf("latency steps not increasing: %.1f %.1f %.1f %.1f", l1, l2, llc, mem)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int64 {
		s, _ := New(Ivy(), 99)
		x, _ := s.NewThread(0)
		y, _ := s.NewThread(10)
		var out []int64
		for i := 0; i < 100; i++ {
			s.Barrier(x, y)
			y.CAS(7)
			s.Barrier(x, y)
			a := x.Rdtsc()
			x.CAS(7)
			out = append(out, x.Rdtsc()-a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNewThreadValidation(t *testing.T) {
	s, _ := New(Ivy(), 0)
	if _, err := s.NewThread(40); err == nil {
		t.Error("expected error pinning beyond last context")
	}
	if _, err := s.NewThread(-1); err == nil {
		t.Error("expected error pinning to negative context")
	}
}

func TestCustomPlatformValid(t *testing.T) {
	f := func(sockets, cores, smt uint8, scale int64) bool {
		s := int(sockets%4) + 1
		c := int(cores%8) + 1
		m := int(smt%4) + 1
		sc := scale % 4
		if sc <= 0 {
			sc = 1
		}
		p := Custom("t", s, c, m, sc, NumberingConsecutive)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	p := Ivy()
	p.Links = nil
	if err := p.Validate(); err == nil {
		t.Error("multi-socket platform without links should fail validation")
	}

	p = Ivy()
	p.MemLat[0][0] = 0
	if err := p.Validate(); err == nil {
		t.Error("zero memory latency should fail validation")
	}

	p = Westmere()
	p.TwoHopLat = 0
	if err := p.Validate(); err == nil {
		t.Error("missing TwoHopLat on a diameter-2 machine should fail")
	}

	p = Ivy()
	p.LocalNodeOf = []int{0, 0}
	if err := p.Validate(); err == nil {
		t.Error("non-permutation LocalNodeOf should fail")
	}
}

func TestSimulatedSeconds(t *testing.T) {
	s, _ := New(Ivy(), 0)
	if sec := s.SimulatedSeconds(2_800_000_000); math.Abs(sec-1.0) > 1e-9 {
		t.Errorf("2.8e9 cycles at 2.8 GHz = %g s, want 1", sec)
	}
}

func TestNodeOwner(t *testing.T) {
	p := Westmere()
	for n := 0; n < p.NumNodes(); n++ {
		owner := p.NodeOwner(n)
		if p.LocalNode(owner) != n {
			t.Errorf("NodeOwner(%d) = %d but LocalNode(%d) = %d", n, owner, owner, p.LocalNode(owner))
		}
	}
}
