package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mctoperr"
)

func mustGenerate(t *testing.T, spec GenSpec) *Platform {
	t.Helper()
	p, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate(%s): %v", spec.Name(), err)
	}
	return p
}

// genTestSpecs covers every kind, SMT on and off, custom generators, seeds
// and the noise flag.
func genTestSpecs() []GenSpec {
	return []GenSpec{
		{Kind: GenMesh, Sockets: 12, Cores: 4, SMT: 2},
		{Kind: GenMesh, Sockets: 7, Cores: 2, SMT: 1}, // prime: 1x7 line
		{Kind: GenRing, Sockets: 16, Cores: 8, SMT: 2, Seed: 7},
		{Kind: GenRing, Sockets: 2, Cores: 4, SMT: 1},
		{Kind: GenCirculant, Sockets: 64, Cores: 8, SMT: 2},
		{Kind: GenCirculant, Sockets: 20, Cores: 2, SMT: 2, Gens: []int{1, 4, 10}},
		{Kind: GenCirculant, Sockets: 8, Cores: 6, SMT: 1, Seed: 3, Noise: true},
	}
}

// TestGenerateDeterministic: the generator is a pure function of its spec —
// two runs produce byte-identical platforms.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range genTestSpecs() {
		a := mustGenerate(t, spec)
		b := mustGenerate(t, spec)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations differ", spec.Name())
		}
		if sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b); sa != sb {
			t.Errorf("%s: printed platforms differ:\n%s\nvs\n%s", spec.Name(), sa, sb)
		}
	}
}

// TestGenerateValidateSweep: every spec a seeded random sweep can produce
// generates a platform that passes Validate (Generate re-checks internally;
// this asserts no error across the space, including degenerate shapes).
func TestGenerateValidateSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []GenKind{GenMesh, GenRing, GenCirculant}
	for i := 0; i < 200; i++ {
		spec := GenSpec{
			Kind:    kinds[rng.Intn(len(kinds))],
			Sockets: 1 + rng.Intn(48),
			Cores:   1 + rng.Intn(8),
			SMT:     1 + rng.Intn(4),
			Seed:    uint64(rng.Intn(3)),
			Noise:   rng.Intn(4) == 0,
		}
		if spec.Kind == GenCirculant && spec.Sockets >= 8 && rng.Intn(2) == 0 {
			spec.Gens = []int{1, 1 + rng.Intn(spec.Sockets/2)}
		}
		p, err := Generate(spec)
		if err != nil {
			t.Fatalf("sweep %d: Generate(%s): %v", i, spec.Name(), err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("sweep %d: Validate(%s): %v", i, spec.Name(), err)
		}
		if got := p.NumContexts(); got != spec.Sockets*spec.Cores*spec.SMT {
			t.Fatalf("sweep %d: %s: %d contexts", i, spec.Name(), got)
		}
	}
}

// TestGenerateLatencySanity: generated latencies are symmetric, zero only on
// the diagonal, and satisfy the triangle inequality — both at the socket
// matrix level and through PairLatency.
func TestGenerateLatencySanity(t *testing.T) {
	for _, spec := range []GenSpec{
		{Kind: GenMesh, Sockets: 12, Cores: 2, SMT: 1},
		{Kind: GenRing, Sockets: 10, Cores: 2, SMT: 2, Seed: 5},
		{Kind: GenCirculant, Sockets: 16, Cores: 2, SMT: 1},
	} {
		p := mustGenerate(t, spec)
		s := p.Sockets
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				if (p.SocketLatMatrix[a][b] == 0) != (a == b) {
					t.Fatalf("%s: zero latency off-diagonal at (%d,%d)", p.Name, a, b)
				}
				if p.SocketLatMatrix[a][b] != p.SocketLatMatrix[b][a] {
					t.Fatalf("%s: asymmetric socket latency at (%d,%d)", p.Name, a, b)
				}
				for c := 0; c < s; c++ {
					if l, via := p.SocketLatMatrix[a][c], p.SocketLatMatrix[a][b]+p.SocketLatMatrix[b][c]; a != b && b != c && a != c && l > via {
						t.Fatalf("%s: triangle violation sockets %d-%d-%d: %d > %d", p.Name, a, b, c, l, via)
					}
				}
			}
		}
		n := p.NumContexts()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if (p.PairLatency(x, y) == 0) != (x == y) {
					t.Fatalf("%s: zero pair latency at (%d,%d)", p.Name, x, y)
				}
				if p.PairLatency(x, y) != p.PairLatency(y, x) {
					t.Fatalf("%s: asymmetric pair latency at (%d,%d)", p.Name, x, y)
				}
			}
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					if x == y || y == z || x == z {
						continue
					}
					if l, via := p.PairLatency(x, z), p.PairLatency(x, y)+p.PairLatency(y, z); l > via {
						t.Fatalf("%s: triangle violation contexts %d-%d-%d: %d > %d", p.Name, x, y, z, l, via)
					}
				}
			}
		}
	}
}

// TestParseGenNameRoundTrip: Name and ParseGenName invert each other, and
// malformed or non-canonical names are client errors.
func TestParseGenNameRoundTrip(t *testing.T) {
	for _, spec := range genTestSpecs() {
		got, err := ParseGenName(spec.Name())
		if err != nil {
			t.Fatalf("ParseGenName(%s): %v", spec.Name(), err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Fatalf("round trip of %s: got %+v want %+v", spec.Name(), got, spec)
		}
	}
	for _, bad := range []string{
		"gen:",
		"gen:torus:s4:c2:t1",         // unknown kind
		"gen:ring:s4:c2",             // missing SMT
		"gen:ring:s4:c2:tx",          // non-numeric
		"gen:ring:s4:c2:t1:q9",       // unknown field
		"gen:ring:s04:c2:t1",         // non-canonical int
		"gen:ring:s4:c2:t1:v0",       // non-canonical default seed
		"gen:mesh:s4:c2:t1:g1",       // generators on a non-circulant kind
		"gen:circulant:s8:c2:t1:g5",  // generator beyond s/2
		"gen:circulant:s8:c2:t1:g-1", // negative generator splits the list
	} {
		spec, err := ParseGenName(bad)
		if err == nil {
			// Kind-level errors surface at Generate time instead.
			if _, err = Generate(spec); err == nil {
				t.Errorf("ParseGenName(%q) accepted and generated", bad)
				continue
			}
		}
		if !errors.Is(err, mctoperr.ErrInvalidRequest) {
			t.Errorf("ParseGenName(%q): err %v, want ErrInvalidRequest", bad, err)
		}
	}
}

// TestByNameGenerated: ByName resolves gen: specs like golden names, keeps
// rejecting unknown names, and flags malformed gen specs as client errors.
func TestByNameGenerated(t *testing.T) {
	name := "gen:ring:s4:c2:t2"
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != name || p.NumContexts() != 16 {
		t.Fatalf("ByName(%s) = %s with %d contexts", name, p.Name, p.NumContexts())
	}
	if _, err := ByName("Ivy"); err != nil {
		t.Fatalf("golden lookup broke: %v", err)
	}
	if _, err := ByName("NoSuch"); !errors.Is(err, mctoperr.ErrUnknownPlatform) {
		t.Fatalf("unknown name: err %v", err)
	}
	if _, err := ByName("gen:ring:sX:c2:t2"); !errors.Is(err, mctoperr.ErrInvalidRequest) {
		t.Fatalf("malformed gen spec: err %v", err)
	}
	if !strings.HasPrefix(name, GenPrefix) {
		t.Fatal("GenPrefix mismatch")
	}
}
