package topo

import "sort"

// queryIndex is the immutable, precomputed query layer of a Topology. The
// paper's pitch is that MCTOP queries are cheap enough to sit inside runtime
// policies (lock backoff quanta, placement builds, work-stealing victim
// orders); re-deriving answers from the group tree on every call is not.
// The index is built once per topology — lazily, on the first query that
// needs it — and turns the hot paths into array lookups:
//
//   - lat is the flat ctx×ctx latency matrix (n ≤ 256 on the paper's
//     machines, so the dense int64 matrix tops out at 512 KB; a level-id
//     matrix + level table would shrink it 8x if a future platform needs
//     it), making GetLatency O(1) and MaxLatencyBetween a pure array scan;
//   - coreIdx/socketIdx flatten the context→core→socket pointer chases used
//     by the power estimator into two int32 lookups;
//   - socketCores, byLocalBW and byLatencyFrom memoize the per-socket core
//     slices and the socket orders every placement build re-derived.
//
// Topologies are immutable after construction (package doc), so the index
// never needs invalidation and is safe to share between goroutines.
type queryIndex struct {
	n   int
	lat []int64 // flattened n×n matrix; lat[x*n+y]

	maxLat int64 // MaxLatency, memoized

	coreIdx   []int32 // ctx id -> index into Topology.cores
	socketIdx []int32 // ctx id -> socket id

	socketCores   [][]*HWCGroup // socket id -> its cores, in core-id order
	byLocalBW     []*Socket     // sockets ordered by local memory BW, best first
	byLatencyFrom [][]*Socket   // socket id -> other sockets, closest first
}

// index returns the topology's query index, building it on first use. The
// sync.Once makes concurrent first queries race-free — one goroutine
// builds, the rest wait — and the steady state is a single inlinable
// atomic load.
func (t *Topology) index() *queryIndex {
	if idx := t.idx.Load(); idx != nil {
		return idx
	}
	t.idxOnce.Do(func() { t.idx.Store(buildIndex(t)) })
	return t.idx.Load()
}

// buildIndex precomputes every memoized structure from the slow reference
// implementations, so the indexed hot paths are equal to the pre-index ones
// by construction (property-tested in index_test.go).
func buildIndex(t *Topology) *queryIndex {
	n := len(t.contexts)
	idx := &queryIndex{
		n:         n,
		lat:       make([]int64, n*n),
		coreIdx:   make([]int32, n),
		socketIdx: make([]int32, n),
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			l := t.getLatencyWalk(x, y)
			idx.lat[x*n+y] = l
			idx.lat[y*n+x] = l
		}
	}
	idx.maxLat = t.maxLatencyScan()

	coreOf := make(map[*HWCGroup]int32, len(t.cores))
	for i, c := range t.cores {
		coreOf[c] = int32(i)
	}
	for i, c := range t.contexts {
		idx.coreIdx[i] = coreOf[c.Core]
		idx.socketIdx[i] = int32(c.Socket.ID)
	}

	idx.socketCores = make([][]*HWCGroup, len(t.sockets))
	for _, s := range t.sockets {
		idx.socketCores[s.ID] = t.socketGetCoresScan(s)
	}
	idx.byLocalBW = t.socketsByLocalBWSort()
	idx.byLatencyFrom = make([][]*Socket, len(t.sockets))
	for _, s := range t.sockets {
		idx.byLatencyFrom[s.ID] = t.socketsByLatencyFromSort(s.ID)
	}
	return idx
}

// getLatencyWalk is the pre-index GetLatency: it walks the group tree to the
// lowest common group of the two contexts. Kept as the reference the index
// is built from and property-tested against.
func (t *Topology) getLatencyWalk(x, y int) int64 {
	if x == y {
		return 0
	}
	cx, cy := t.Context(x), t.Context(y)
	if cx == nil || cy == nil {
		return -1
	}
	if cx.Socket != cy.Socket {
		return t.socketLat[cx.Socket.ID][cy.Socket.ID]
	}
	// Lowest common group: walk up from the core.
	gx, gy := cx.Core, cy.Core
	if gx == gy {
		if gx.Latency > 0 {
			return gx.Latency
		}
		return 0 // synthesized single-context core
	}
	for gx != nil && gy != nil {
		if gx.Parent == gy.Parent {
			if gx.Parent != nil {
				return gx.Parent.Latency
			}
			break
		}
		gx, gy = gx.Parent, gy.Parent
	}
	return cx.Socket.Latency
}

// maxLatencyBetweenWalk is the pre-index MaxLatencyBetween: O(k²) group-tree
// walks. Reference implementation for the property tests.
func (t *Topology) maxLatencyBetweenWalk(ctxs []int) int64 {
	var max int64
	for i := 0; i < len(ctxs); i++ {
		for j := i + 1; j < len(ctxs); j++ {
			if l := t.getLatencyWalk(ctxs[i], ctxs[j]); l > max {
				max = l
			}
		}
	}
	return max
}

// maxLatencyScan is the pre-index MaxLatency: a scan over the socket matrix
// and the intra-socket levels.
func (t *Topology) maxLatencyScan() int64 {
	var max int64
	for _, row := range t.socketLat {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	for _, l := range t.levels {
		if l.Kind != LevelCross && l.Median > max {
			max = l.Median
		}
	}
	return max
}

// socketGetCoresScan is the pre-index SocketGetCores: a scan over all cores.
func (t *Topology) socketGetCoresScan(s *Socket) []*HWCGroup {
	var cores []*HWCGroup
	for _, c := range t.cores {
		if c.Socket == s {
			cores = append(cores, c)
		}
	}
	return cores
}

// socketsByLocalBWSort is the pre-index SocketsByLocalBW: a stable sort per
// call.
func (t *Topology) socketsByLocalBWSort() []*Socket {
	out := append([]*Socket(nil), t.sockets...)
	sort.SliceStable(out, func(i, j int) bool {
		return localBW(out[i]) > localBW(out[j])
	})
	return out
}

// socketsByLatencyFromSort is the pre-index SocketsByLatencyFrom: a sort per
// call.
func (t *Topology) socketsByLatencyFromSort(s int) []*Socket {
	type entry struct {
		sock *Socket
		lat  int64
	}
	var es []entry
	for _, o := range t.sockets {
		if o.ID == s {
			continue
		}
		es = append(es, entry{o, t.socketLat[s][o.ID]})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lat != es[j].lat {
			return es[i].lat < es[j].lat
		}
		return es[i].sock.ID < es[j].sock.ID
	})
	out := make([]*Socket, len(es))
	for i, e := range es {
		out[i] = e.sock
	}
	return out
}

// powerEstimateMap is the pre-index PowerEstimate: per-call maps over the
// core pointers. Reference implementation for the property tests.
func (t *Topology) powerEstimateMap(ctxs []int, withDRAM bool) (perSocket []float64, total float64) {
	perSocket = make([]float64, len(t.sockets))
	if !t.power.Available() {
		return perSocket, 0
	}
	ctxPerCore := make(map[*HWCGroup]int)
	active := make([]bool, len(t.sockets))
	for _, id := range ctxs {
		c := t.Context(id)
		if c == nil {
			continue
		}
		ctxPerCore[c.Core]++
		active[c.Socket.ID] = true
	}
	for s := range t.sockets {
		if active[s] {
			perSocket[s] = t.power.PerSocketBase
			if withDRAM {
				perSocket[s] += t.power.DRAM
			}
		}
	}
	for core, n := range ctxPerCore {
		perSocket[core.Socket.ID] += t.power.PerFirstCtx + float64(n-1)*t.power.PerExtraCtx
	}
	for _, p := range perSocket {
		total += p
	}
	return perSocket, total
}
