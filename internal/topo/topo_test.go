package topo

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// ivySpec builds the spec MCTOP-ALG would produce on the paper's Ivy: 2
// sockets x 10 cores x 2 SMT contexts with Intel-halves numbering, levels
// 28 (core) / 112 (socket) / 308 (cross).
func ivySpec() Spec {
	nCores := 20
	coreGroups := make([][]int, nCores)
	for c := 0; c < nCores; c++ {
		coreGroups[c] = []int{c, c + nCores}
	}
	sockGroups := make([][]int, 2)
	for s := 0; s < 2; s++ {
		for c := 0; c < 10; c++ {
			core := s*10 + c
			sockGroups[s] = append(sockGroups[s], core, core+nCores)
		}
	}
	return Spec{
		Name: "Ivy", Contexts: 40, Nodes: 2, SMTWays: 2, FreqGHz: 2.8,
		Levels: []Level{
			{Name: "core", Kind: LevelGroup, Min: 27, Median: 28, Max: 29, Groups: coreGroups},
			{Name: "socket", Kind: LevelSocket, Min: 96, Median: 112, Max: 128, Groups: sockGroups},
			{Name: "cross-1", Kind: LevelCross, Min: 300, Median: 308, Max: 316},
		},
		NodeOfSocket: []int{0, 1},
		SocketLat:    [][]int64{{112, 308}, {308, 112}},
		SocketBW:     [][]float64{{0, 16}, {16, 0}},
		MemLat:       [][]int64{{280, 430}, {430, 280}},
		MemBW:        [][]float64{{15.9, 7.5}, {12.0, 8.37}},
		Cache:        &CacheInfo{LatL1: 4, LatL2: 12, LatLLC: 42, SizeL1: 32 << 10, SizeL2: 256 << 10, SizeLLC: 25 << 20},
		Power: &PowerInfo{
			Idle: 40, Full: 110.1, FirstCtx: 3.2, SecondCtx: 1.46,
			PerSocketBase: 20.1, PerFirstCtx: 3.2, PerExtraCtx: 1.46, DRAM: 45.25,
		},
	}
}

// opteronSpec builds an 8-socket, 6-core, no-SMT spec with three cross
// levels (197 / 217 / 300) like the paper's Opteron.
func opteronSpec() Spec {
	sockGroups := make([][]int, 8)
	for s := 0; s < 8; s++ {
		for c := 0; c < 6; c++ {
			sockGroups[s] = append(sockGroups[s], s*6+c)
		}
	}
	lat := make([][]int64, 8)
	direct := func(a, b int) bool {
		if a/2 == b/2 {
			return true
		}
		return a%2 == b%2
	}
	for a := 0; a < 8; a++ {
		lat[a] = make([]int64, 8)
		for b := 0; b < 8; b++ {
			switch {
			case a == b:
				lat[a][b] = 117
			case a/2 == b/2:
				lat[a][b] = 197
			case direct(a, b):
				lat[a][b] = 217
			default:
				lat[a][b] = 300
			}
		}
	}
	return Spec{
		Name: "Opteron", Contexts: 48, Nodes: 8, SMTWays: 1, FreqGHz: 2.1,
		Levels: []Level{
			{Name: "socket", Kind: LevelSocket, Min: 109, Median: 117, Max: 125, Groups: sockGroups},
			{Name: "mcm", Kind: LevelCross, Min: 194, Median: 197, Max: 200},
			{Name: "direct", Kind: LevelCross, Min: 214, Median: 217, Max: 220},
			{Name: "twohop", Kind: LevelCross, Min: 297, Median: 300, Max: 303},
		},
		NodeOfSocket: []int{0, 1, 2, 3, 4, 5, 6, 7},
		SocketLat:    lat,
	}
}

func TestFromSpecIvy(t *testing.T) {
	top, err := FromSpec(ivySpec())
	if err != nil {
		t.Fatal(err)
	}
	if top.NumHWContexts() != 40 || top.NumCores() != 20 || top.NumSockets() != 2 || top.NumNodes() != 2 {
		t.Fatalf("dims: %d/%d/%d/%d", top.NumHWContexts(), top.NumCores(), top.NumSockets(), top.NumNodes())
	}
	if !top.HasSMT() || top.SMTWays() != 2 {
		t.Error("Ivy should have 2-way SMT")
	}
	// Contexts 0 and 20 share a core; 0 and 1 don't.
	if top.Context(0).Core != top.Context(20).Core {
		t.Error("ctx 0 and 20 should share a core")
	}
	if top.Context(0).Core == top.Context(1).Core {
		t.Error("ctx 0 and 1 should not share a core")
	}
	// Socket membership.
	if top.Context(9).Socket.ID != 0 || top.Context(10).Socket.ID != 1 {
		t.Error("socket membership wrong")
	}
	if top.Context(29).Socket.ID != 0 || top.Context(30).Socket.ID != 1 {
		t.Error("second-half socket membership wrong")
	}
}

func TestGetLatency(t *testing.T) {
	top, err := FromSpec(ivySpec())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y int
		want int64
	}{
		{0, 0, 0},
		{0, 20, 28},  // same core
		{0, 1, 112},  // same socket
		{0, 10, 308}, // cross socket
		{25, 6, 112}, // same socket via second halves
	}
	for _, c := range cases {
		if got := top.GetLatency(c.x, c.y); got != c.want {
			t.Errorf("GetLatency(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
		if got := top.GetLatency(c.y, c.x); got != c.want {
			t.Errorf("GetLatency(%d,%d) not symmetric", c.y, c.x)
		}
	}
	if top.GetLatency(0, 99) != -1 {
		t.Error("out-of-range context should yield -1")
	}
}

func TestGetLocalNodeAndCores(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	if n := top.GetLocalNode(0); n == nil || n.ID != 0 {
		t.Errorf("local node of ctx 0 = %v", n)
	}
	if n := top.GetLocalNode(15); n == nil || n.ID != 1 {
		t.Errorf("local node of ctx 15 = %v", n)
	}
	cores := top.SocketGetCores(top.Socket(0))
	if len(cores) != 10 {
		t.Fatalf("socket 0 has %d cores", len(cores))
	}
	for _, c := range cores {
		if len(c.Contexts) != 2 {
			t.Errorf("core %d has %d contexts", c.ID, len(c.Contexts))
		}
	}
}

func TestNoSMTSynthesizedCores(t *testing.T) {
	top, err := FromSpec(opteronSpec())
	if err != nil {
		t.Fatal(err)
	}
	if top.HasSMT() {
		t.Error("Opteron has no SMT")
	}
	if top.NumCores() != 48 {
		t.Errorf("cores = %d, want 48 (one per context)", top.NumCores())
	}
	if top.GetLatency(0, 1) != 117 {
		t.Errorf("intra = %d", top.GetLatency(0, 1))
	}
	if top.GetLatency(0, 6) != 197 {
		t.Errorf("MCM pair = %d", top.GetLatency(0, 6))
	}
	if top.GetLatency(0, 12) != 217 {
		t.Errorf("direct = %d", top.GetLatency(0, 12))
	}
	if top.GetLatency(0, 18) != 300 {
		t.Errorf("two-hop = %d", top.GetLatency(0, 18))
	}
}

func TestInterconnectHops(t *testing.T) {
	top, _ := FromSpec(opteronSpec())
	s0 := top.Socket(0)
	if len(s0.Interconnects) != 7 {
		t.Fatalf("socket 0 has %d interconnects", len(s0.Interconnects))
	}
	for _, ic := range s0.Interconnects {
		wantHops := 1
		if ic.Latency == 300 {
			wantHops = 3 // third cross level
		} else if ic.Latency == 217 {
			wantHops = 2
		}
		_ = wantHops
	}
	// MCM sibling is level-1 cross (hops 1), two-hop pairs map to the last
	// cross level.
	for _, ic := range s0.Interconnects {
		switch ic.To.ID {
		case 1:
			if ic.Hops != 1 {
				t.Errorf("0-1 hops = %d", ic.Hops)
			}
		case 3, 5, 7:
			if ic.Hops != 3 {
				t.Errorf("0-%d hops = %d, want 3 (third cross level)", ic.To.ID, ic.Hops)
			}
		}
	}
}

func TestMaxLatency(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	if got := top.MaxLatency(); got != 308 {
		t.Errorf("MaxLatency = %d", got)
	}
	if got := top.MaxLatencyBetween([]int{0, 1, 2}); got != 112 {
		t.Errorf("MaxLatencyBetween intra = %d", got)
	}
	if got := top.MaxLatencyBetween([]int{0, 20}); got != 28 {
		t.Errorf("MaxLatencyBetween core = %d", got)
	}
	if got := top.MaxLatencyBetween([]int{0, 1, 30}); got != 308 {
		t.Errorf("MaxLatencyBetween cross = %d", got)
	}
}

func TestSocketOrderings(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	byBW := top.SocketsByLocalBW()
	if byBW[0].ID != 0 || byBW[1].ID != 1 {
		t.Errorf("SocketsByLocalBW order: %d, %d", byBW[0].ID, byBW[1].ID)
	}
	a, b := top.MinLatencyPair()
	if a == nil || b == nil || a.ID == b.ID {
		t.Error("MinLatencyPair invalid")
	}
	a, b = top.MaxBWPair()
	if a == nil || b == nil {
		t.Error("MaxBWPair invalid")
	}

	opt, _ := FromSpec(opteronSpec())
	near := opt.SocketsByLatencyFrom(0)
	if near[0].ID != 1 {
		t.Errorf("closest socket to 0 = %d, want 1 (MCM sibling)", near[0].ID)
	}
	if near[len(near)-1].ID%2 == 0 {
		t.Errorf("farthest socket to 0 = %d, want an odd (two-hop) socket", near[len(near)-1].ID)
	}
}

func TestContextsByLatencyFrom(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	order := top.ContextsByLatencyFrom(0)
	if len(order) != 39 {
		t.Fatalf("got %d contexts", len(order))
	}
	if order[0] != 20 {
		t.Errorf("first victim = %d, want SMT sibling 20", order[0])
	}
	// All same-socket contexts come before any cross-socket one.
	crossSeen := false
	for _, id := range order {
		cross := top.Context(id).Socket.ID != 0
		if cross {
			crossSeen = true
		} else if crossSeen {
			t.Fatalf("same-socket context %d after a cross-socket one", id)
		}
	}
}

func TestHorizontalLinks(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	// Next of ctx 0 is its SMT sibling.
	if top.Context(0).Next.ID != 20 {
		t.Errorf("ctx 0 Next = %d, want 20", top.Context(0).Next.ID)
	}
	// Walking Next from any context covers the whole machine.
	seen := map[int]bool{}
	c := top.Context(5)
	for i := 0; i < top.NumHWContexts(); i++ {
		seen[c.ID] = true
		c = c.Next
	}
	if len(seen) != 40 {
		t.Errorf("Next chain covers %d contexts", len(seen))
	}
	// Core chain.
	core := top.Cores()[0]
	count := 0
	for n := core; ; n = n.Next {
		count++
		if n.Next == core {
			break
		}
	}
	if count != 20 {
		t.Errorf("core chain covers %d cores", count)
	}
}

func TestPowerEstimate(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	var ctxs []int
	for c := 0; c < 10; c++ {
		ctxs = append(ctxs, c, c+20) // all of socket 0
	}
	for c := 10; c < 15; c++ {
		ctxs = append(ctxs, c, c+20) // half of socket 1
	}
	per, total := top.PowerEstimate(ctxs, false)
	if per[0] < 66.6 || per[0] > 66.8 || per[1] < 43.3 || per[1] > 43.5 {
		t.Errorf("per-socket = %.1f/%.1f, want 66.7/43.4", per[0], per[1])
	}
	if total < 110 || total > 110.2 {
		t.Errorf("total = %.1f", total)
	}
	// No power info: zero.
	opt, _ := FromSpec(opteronSpec())
	_, total = opt.PowerEstimate(ctxs, true)
	if total != 0 {
		t.Errorf("Opteron power = %g, want 0 (unavailable)", total)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []Spec{ivySpec(), opteronSpec()} {
		var buf bytes.Buffer
		if err := Encode(&buf, &spec); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(&spec, got) {
			t.Errorf("%s: round trip mismatch:\nin:  %+v\nout: %+v", spec.Name, spec, *got)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ivy.mct")
	top, _ := FromSpec(ivySpec())
	if err := SaveFile(path, top); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumHWContexts() != 40 || loaded.GetLatency(0, 20) != 28 {
		t.Error("loaded topology differs")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not mctop\n",
		"mctop 1\nname x\nbogus 4\nend\n",
		"mctop 1\nname x\nlevel 3 group a 1 2 3\nend\n",
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutate := func(f func(*Spec)) error {
		s := ivySpec()
		f(&s)
		_, err := FromSpec(s)
		return err
	}
	if err := mutate(func(s *Spec) { s.Levels[0].Groups[0] = []int{0, 0} }); err == nil {
		t.Error("duplicate context in group should fail")
	}
	if err := mutate(func(s *Spec) { s.Levels[0].Groups[0] = []int{0, 99} }); err == nil {
		t.Error("out-of-range context should fail")
	}
	if err := mutate(func(s *Spec) {
		// Straddle: put ctx 0's core across two sockets.
		s.Levels[1].Groups[0][0] = 10
		s.Levels[1].Groups[1][0] = 0
	}); err == nil {
		t.Error("core straddling sockets should fail")
	}
	if err := mutate(func(s *Spec) { s.SocketLat[0][1] = 999 }); err == nil {
		t.Error("asymmetric socket latency should fail")
	}
	if err := mutate(func(s *Spec) { s.NodeOfSocket = []int{0, 0} }); err == nil {
		t.Error("node without socket should fail")
	}
	if err := mutate(func(s *Spec) { s.Levels[1].Kind = LevelGroup }); err == nil {
		t.Error("spec without socket level should fail")
	}
	if err := mutate(func(s *Spec) { s.Levels[2].Median = 50 }); err == nil {
		t.Error("non-ascending levels should fail")
	}
	if err := mutate(func(s *Spec) {
		s.Levels[0].Groups = s.Levels[0].Groups[:19]
	}); err == nil {
		t.Error("missing context should fail")
	}
}

func TestDotOutputs(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	intra := top.DotIntraSocket(0)
	if !strings.Contains(intra, "Socket 0 - 112 cycles") {
		t.Error("intra graph missing socket label")
	}
	if !strings.Contains(intra, "Node 0") || !strings.Contains(intra, "Node 1") {
		t.Error("intra graph missing nodes")
	}
	if !strings.Contains(intra, "gray80") {
		t.Error("intra graph should shade the local node")
	}
	cross := top.DotCrossSocket()
	if !strings.Contains(cross, "s0 -- s1") {
		t.Error("cross graph missing link")
	}
	if !strings.Contains(cross, "308 cy") {
		t.Error("cross graph missing latency label")
	}
	opt, _ := FromSpec(opteronSpec())
	crossOpt := opt.DotCrossSocket()
	if !strings.Contains(crossOpt, "lvl 3") {
		t.Errorf("Opteron cross graph should note the non-direct level:\n%s", crossOpt)
	}
	if top.DotIntraSocket(99) != "" {
		t.Error("invalid socket should render empty")
	}
}

func TestStringSummary(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	s := top.String()
	for _, want := range []string{"MCTOP Ivy", "40 contexts", "2 sockets", "socket latencies"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompareOSAgreement(t *testing.T) {
	top, _ := FromSpec(ivySpec())
	coreOf := make([]int, 40)
	sockOf := make([]int, 40)
	for c := 0; c < 40; c++ {
		coreOf[c] = c % 20
		sockOf[c] = (c % 20) / 10
	}
	diffs := top.CompareOS(coreOf, sockOf, []int{0, 1})
	if len(diffs) != 0 {
		t.Errorf("expected agreement, got %v", diffs)
	}
	// Wrong node mapping must be reported (the Opteron scenario).
	diffs = top.CompareOS(coreOf, sockOf, []int{1, 0})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "node mapping") {
		t.Errorf("expected node-mapping divergence, got %v", diffs)
	}
	// Wrong core grouping must be reported.
	badCore := append([]int(nil), coreOf...)
	badCore[0] = 5
	diffs = top.CompareOS(badCore, sockOf, []int{0, 1})
	if len(diffs) == 0 {
		t.Error("expected core-grouping divergence")
	}
}
