package topo

// BenchmarkQueryIndex_* measure the precomputed query index against the
// pre-index tree-walk/sort implementations it replaced (kept in index.go as
// the reference). The *Preindex variants are the old cost; the headline
// acceptance numbers are GetLatency and MaxLatencyBetween at 64 contexts on
// the 8-socket Westmere (the paper's largest x86 machine).

import (
	"path/filepath"
	"testing"
)

func benchGolden(b *testing.B, file string) *Topology {
	b.Helper()
	top, err := LoadFile(filepath.Join("testdata", file))
	if err != nil {
		b.Fatal(err)
	}
	return top
}

// benchPairs pre-generates a 50/50 mix of intra-socket pairs (where the
// pre-index implementation walks the group tree) and cross-socket pairs
// (where it exits early), so the timed loop is lookups, not index
// arithmetic.
func benchPairs(top *Topology) [][2]int {
	n := top.NumHWContexts()
	perSocket := n / top.NumSockets()
	pairs := make([][2]int, 1024)
	for i := range pairs {
		if i%2 == 0 {
			base := ((i * 13) % n) / perSocket * perSocket
			pairs[i] = [2]int{base + i%perSocket, base + (i*7+1)%perSocket}
		} else {
			pairs[i] = [2]int{(i * 13) % n, (i*29 + 7) % n}
		}
	}
	return pairs
}

func BenchmarkQueryIndex_GetLatency(b *testing.B) {
	top := benchGolden(b, "sparc.mctop")
	pairs := benchPairs(top)
	top.GetLatency(0, 1) // build the index outside the timed loop
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		sink += top.GetLatency(p[0], p[1])
	}
	_ = sink
}

func BenchmarkQueryIndex_GetLatencyPreindex(b *testing.B) {
	top := benchGolden(b, "sparc.mctop")
	pairs := benchPairs(top)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		sink += top.getLatencyWalk(p[0], p[1])
	}
	_ = sink
}

// benchCtxs64 is the 64-participant set of the MaxLatencyBetween headline:
// every 2nd context of the 160-context Westmere, spanning all 8 sockets.
func benchCtxs64(top *Topology) []int {
	ctxs := make([]int, 64)
	for i := range ctxs {
		ctxs[i] = (i * 2) % top.NumHWContexts()
	}
	return ctxs
}

func BenchmarkQueryIndex_MaxLatencyBetween64(b *testing.B) {
	top := benchGolden(b, "westmere.mctop")
	ctxs := benchCtxs64(top)
	top.GetLatency(0, 1)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += top.MaxLatencyBetween(ctxs)
	}
	_ = sink
}

func BenchmarkQueryIndex_MaxLatencyBetween64Preindex(b *testing.B) {
	top := benchGolden(b, "westmere.mctop")
	ctxs := benchCtxs64(top)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += top.maxLatencyBetweenWalk(ctxs)
	}
	_ = sink
}

func BenchmarkQueryIndex_PowerEstimate(b *testing.B) {
	top := benchGolden(b, "haswell.mctop")
	ctxs := benchCtxs64(top)
	top.GetLatency(0, 1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		_, t := top.PowerEstimate(ctxs, false)
		sink += t
	}
	_ = sink
}

func BenchmarkQueryIndex_PowerEstimatePreindex(b *testing.B) {
	top := benchGolden(b, "haswell.mctop")
	ctxs := benchCtxs64(top)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		_, t := top.powerEstimateMap(ctxs, false)
		sink += t
	}
	_ = sink
}

func BenchmarkQueryIndex_SocketOrders(b *testing.B) {
	top := benchGolden(b, "opteron.mctop")
	top.GetLatency(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.SocketsByLocalBW()
		top.SocketsByLatencyFrom(i % top.NumSockets())
	}
}

func BenchmarkQueryIndex_SocketOrdersPreindex(b *testing.B) {
	top := benchGolden(b, "opteron.mctop")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.socketsByLocalBWSort()
		top.socketsByLatencyFromSort(i % top.NumSockets())
	}
}
