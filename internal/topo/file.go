package topo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Description files: MCTOP topologies are created by libmctop once and then
// loaded from disk (Section 2). The format is line-oriented text, ordered,
// and round-trips exactly through Encode and Decode.

const fileMagic = "mctop 1"

// Encode writes a topology spec as a description file.
func Encode(w io.Writer, s *Spec) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, fileMagic)
	fmt.Fprintf(bw, "name %s\n", sanitize(s.Name))
	fmt.Fprintf(bw, "contexts %d\n", s.Contexts)
	fmt.Fprintf(bw, "nodes %d\n", s.Nodes)
	fmt.Fprintf(bw, "smt %d\n", s.SMTWays)
	fmt.Fprintf(bw, "freq_ghz %g\n", s.FreqGHz)
	for i, l := range s.Levels {
		fmt.Fprintf(bw, "level %d %s %s %d %d %d\n", i, l.Kind, sanitize(l.Name), l.Min, l.Median, l.Max)
		for _, g := range l.Groups {
			fmt.Fprintf(bw, "group %d :", i)
			for _, ctx := range g {
				fmt.Fprintf(bw, " %d", ctx)
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprint(bw, "node_of_socket")
	for _, n := range s.NodeOfSocket {
		fmt.Fprintf(bw, " %d", n)
	}
	fmt.Fprintln(bw)
	for _, row := range s.SocketLat {
		fmt.Fprint(bw, "socket_lat")
		for _, v := range row {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	for _, row := range s.SocketBW {
		fmt.Fprint(bw, "socket_bw")
		for _, v := range row {
			fmt.Fprintf(bw, " %g", v)
		}
		fmt.Fprintln(bw)
	}
	for _, row := range s.MemLat {
		fmt.Fprint(bw, "mem_lat")
		for _, v := range row {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	for _, row := range s.MemBW {
		fmt.Fprint(bw, "mem_bw")
		for _, v := range row {
			fmt.Fprintf(bw, " %g", v)
		}
		fmt.Fprintln(bw)
	}
	if s.StreamCoreBW > 0 {
		fmt.Fprintf(bw, "stream_core_bw %g\n", s.StreamCoreBW)
	}
	if s.Cache != nil {
		c := s.Cache
		fmt.Fprintf(bw, "cache %d %d %d %d %d %d\n",
			c.LatL1, c.LatL2, c.LatLLC, c.SizeL1, c.SizeL2, c.SizeLLC)
	}
	if s.Power != nil {
		p := s.Power
		fmt.Fprintf(bw, "power %g %g %g %g %g %g %g %g\n",
			p.Idle, p.Full, p.FirstCtx, p.SecondCtx,
			p.PerSocketBase, p.PerFirstCtx, p.PerExtraCtx, p.DRAM)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "-"
	}
	return strings.ReplaceAll(s, " ", "_")
}

func unsanitize(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Decode parses a description file back into a spec.
func Decode(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimSpace(sc.Text())
			if t == "" || strings.HasPrefix(t, "#") {
				continue
			}
			return t, true
		}
		return "", false
	}
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("topo: description line %d: %s", line, fmt.Sprintf(format, args...))
	}

	first, ok := next()
	if !ok || first != fileMagic {
		return nil, fail("bad magic %q", first)
	}
	s := &Spec{}
	var curLevel = -1
	for {
		t, ok := next()
		if !ok {
			return nil, fail("missing end marker")
		}
		if t == "end" {
			break
		}
		fields := strings.Fields(t)
		key := fields[0]
		args := fields[1:]
		switch key {
		case "name":
			if len(args) != 1 {
				return nil, fail("name wants 1 arg")
			}
			s.Name = unsanitize(args[0])
		case "contexts":
			if err := parseInt(args, &s.Contexts); err != nil {
				return nil, fail("contexts: %v", err)
			}
		case "nodes":
			if err := parseInt(args, &s.Nodes); err != nil {
				return nil, fail("nodes: %v", err)
			}
		case "smt":
			if err := parseInt(args, &s.SMTWays); err != nil {
				return nil, fail("smt: %v", err)
			}
		case "freq_ghz":
			if len(args) != 1 {
				return nil, fail("freq_ghz wants 1 arg")
			}
			f, err := strconv.ParseFloat(args[0], 64)
			if err != nil {
				return nil, fail("freq_ghz: %v", err)
			}
			s.FreqGHz = f
		case "level":
			if len(args) != 6 {
				return nil, fail("level wants 6 args, got %d", len(args))
			}
			idx, err := strconv.Atoi(args[0])
			if err != nil || idx != len(s.Levels) {
				return nil, fail("level index %q out of order", args[0])
			}
			var kind LevelKind
			switch args[1] {
			case "group":
				kind = LevelGroup
			case "socket":
				kind = LevelSocket
			case "cross":
				kind = LevelCross
			default:
				return nil, fail("unknown level kind %q", args[1])
			}
			min, err1 := strconv.ParseInt(args[3], 10, 64)
			med, err2 := strconv.ParseInt(args[4], 10, 64)
			max, err3 := strconv.ParseInt(args[5], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("level latencies unparsable")
			}
			s.Levels = append(s.Levels, Level{
				Name: unsanitize(args[2]), Kind: kind, Min: min, Median: med, Max: max,
			})
			curLevel = idx
		case "group":
			if len(args) < 3 || args[1] != ":" {
				return nil, fail("group wants 'group <level> : ctx...'")
			}
			idx, err := strconv.Atoi(args[0])
			if err != nil || idx != curLevel {
				return nil, fail("group level %q does not match current level %d", args[0], curLevel)
			}
			var g []int
			for _, a := range args[2:] {
				v, err := strconv.Atoi(a)
				if err != nil {
					return nil, fail("group member %q: %v", a, err)
				}
				g = append(g, v)
			}
			s.Levels[idx].Groups = append(s.Levels[idx].Groups, g)
		case "node_of_socket":
			for _, a := range args {
				v, err := strconv.Atoi(a)
				if err != nil {
					return nil, fail("node_of_socket: %v", err)
				}
				s.NodeOfSocket = append(s.NodeOfSocket, v)
			}
		case "socket_lat":
			row, err := parseInt64Row(args)
			if err != nil {
				return nil, fail("socket_lat: %v", err)
			}
			s.SocketLat = append(s.SocketLat, row)
		case "socket_bw":
			row, err := parseFloatRow(args)
			if err != nil {
				return nil, fail("socket_bw: %v", err)
			}
			s.SocketBW = append(s.SocketBW, row)
		case "mem_lat":
			row, err := parseInt64Row(args)
			if err != nil {
				return nil, fail("mem_lat: %v", err)
			}
			s.MemLat = append(s.MemLat, row)
		case "mem_bw":
			row, err := parseFloatRow(args)
			if err != nil {
				return nil, fail("mem_bw: %v", err)
			}
			s.MemBW = append(s.MemBW, row)
		case "stream_core_bw":
			if len(args) != 1 {
				return nil, fail("stream_core_bw wants 1 arg")
			}
			f, err := strconv.ParseFloat(args[0], 64)
			if err != nil {
				return nil, fail("stream_core_bw: %v", err)
			}
			s.StreamCoreBW = f
		case "cache":
			if len(args) != 6 {
				return nil, fail("cache wants 6 args")
			}
			vals, err := parseInt64Row(args)
			if err != nil {
				return nil, fail("cache: %v", err)
			}
			s.Cache = &CacheInfo{
				LatL1: vals[0], LatL2: vals[1], LatLLC: vals[2],
				SizeL1: vals[3], SizeL2: vals[4], SizeLLC: vals[5],
			}
		case "power":
			if len(args) != 8 {
				return nil, fail("power wants 8 args")
			}
			vals, err := parseFloatRow(args)
			if err != nil {
				return nil, fail("power: %v", err)
			}
			s.Power = &PowerInfo{
				Idle: vals[0], Full: vals[1], FirstCtx: vals[2], SecondCtx: vals[3],
				PerSocketBase: vals[4], PerFirstCtx: vals[5], PerExtraCtx: vals[6], DRAM: vals[7],
			}
		default:
			return nil, fail("unknown directive %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseInt(args []string, out *int) error {
	if len(args) != 1 {
		return fmt.Errorf("want 1 arg, got %d", len(args))
	}
	v, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	*out = v
	return nil
}

func parseInt64Row(args []string) ([]int64, error) {
	row := make([]int64, 0, len(args))
	for _, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

func parseFloatRow(args []string) ([]float64, error) {
	row := make([]float64, 0, len(args))
	for _, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// WriteFileAtomic writes a file via a temp file in the target directory
// plus rename, so a crash mid-write can never leave a torn file where a
// reader looks. Shared by SaveFile and the registry's spool tier — any
// future durability fix (fsync before rename, say) lands in one place.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SaveFile writes a topology's description file to disk atomically (a
// crashed writer can never leave a torn description file behind).
func SaveFile(path string, t *Topology) error {
	spec := t.Spec()
	return WriteFileAtomic(path, func(w io.Writer) error {
		return Encode(w, &spec)
	})
}

// LoadFile reads a description file and builds the topology.
func LoadFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := Decode(f)
	if err != nil {
		return nil, err
	}
	return FromSpec(*spec)
}
