package topo

import (
	"fmt"
	"sort"
	"strings"
)

// Graphviz visualization (Section 2.1): libmctop generates two graphs — the
// intra-socket topology with memory latencies/bandwidths (Figures 1a, 2a,
// 3) and the cross-socket topology with interconnect latencies and
// bandwidths plus the non-direct "lvl N" note (Figures 1b, 2b).

// DotIntraSocket renders the intra-socket graph of one socket: a cluster of
// core rows (each row lists the core's hardware contexts and the same-core
// latency), surrounded by the memory nodes with their latency and bandwidth
// from this socket; the local node is shaded.
func (t *Topology) DotIntraSocket(socket int) string {
	s := t.Socket(socket)
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph mctop_socket_%d {\n", socket)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  subgraph cluster_socket {\n    label=\"Socket %d - %d cycles\";\n", socket, s.Latency)
	coreLat := int64(0)
	if t.HasSMT() {
		coreLat = t.cores[0].Latency
	}
	for _, core := range t.SocketGetCores(s) {
		ids := make([]string, 0, len(core.Contexts))
		for _, c := range core.Contexts {
			ids = append(ids, fmt.Sprintf("%03d", c.ID))
		}
		label := strings.Join(ids, " ")
		if t.HasSMT() {
			label += fmt.Sprintf("  %d", coreLat)
		}
		fmt.Fprintf(&b, "    core_%d [label=\"%s\"];\n", core.ID, label)
	}
	b.WriteString("  }\n")
	for _, n := range t.nodes {
		lat, bw := int64(0), 0.0
		if s.MemLat != nil {
			lat = s.MemLat[n.ID]
		}
		if s.MemBW != nil {
			bw = s.MemBW[n.ID]
		}
		style := ""
		if s.Local == n {
			style = ", style=filled, fillcolor=gray80"
		}
		fmt.Fprintf(&b, "  node_%d [label=\"Node %d\\n%d cy\\n%.1f GB/s\"%s];\n", n.ID, n.ID, lat, bw, style)
		fmt.Fprintf(&b, "  cluster_anchor_%d [style=invis, label=\"\"];\n", n.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

// DotCrossSocket renders the cross-socket graph: sockets as vertices,
// direct interconnects as labeled edges, and a note for each non-direct
// latency level ("lvl 4 (2 hops) NNN cy").
func (t *Topology) DotCrossSocket() string {
	var b strings.Builder
	b.WriteString("graph mctop_cross_socket {\n")
	b.WriteString("  layout=circo;\n  node [shape=circle, fontname=\"Helvetica\"];\n")
	for _, s := range t.sockets {
		fmt.Fprintf(&b, "  s%d [label=\"%d\"];\n", s.ID, s.ID)
	}
	for _, s := range t.sockets {
		for _, ic := range s.Interconnects {
			if ic.To.ID < s.ID || ic.Hops != 1 {
				continue // draw each direct link once
			}
			label := fmt.Sprintf("%d cy", ic.Latency)
			if ic.BW > 0 {
				label += fmt.Sprintf("\\n%.1f GB/s", ic.BW)
			}
			fmt.Fprintf(&b, "  s%d -- s%d [label=\"%s\"];\n", s.ID, ic.To.ID, label)
		}
	}
	// Non-direct levels as annotations, matching the paper's "lvl 4".
	si := t.spec.socketLevelIdx()
	for i, l := range t.levels {
		if l.Kind != LevelCross || i == si+1 {
			continue
		}
		hops := i - si
		fmt.Fprintf(&b, "  lvl%d [shape=plaintext, label=\"lvl %d\\n(%d hops) %d cy\"];\n", i, i, hops, l.Median)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders a textual summary of the topology, the "textual output"
// alternative to the graphs.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MCTOP %s: %d contexts, %d cores, %d sockets, %d nodes, SMT=%d\n",
		t.name, t.NumHWContexts(), t.NumCores(), t.NumSockets(), t.NumNodes(), t.smtWays)
	for i, l := range t.levels {
		fmt.Fprintf(&b, "  level %d (%s %q): lat %d [%d..%d]",
			i+1, l.Kind, l.Name, l.Median, l.Min, l.Max)
		if l.Groups != nil {
			fmt.Fprintf(&b, ", %d groups of %d", len(l.Groups), len(l.Groups[0]))
		}
		b.WriteByte('\n')
	}
	for _, s := range t.sockets {
		fmt.Fprintf(&b, "  socket %d: node %d, contexts", s.ID, s.Local.ID)
		for i, c := range s.Contexts {
			if i == 8 {
				fmt.Fprintf(&b, " ... (%d total)", len(s.Contexts))
				break
			}
			fmt.Fprintf(&b, " %d", c.ID)
		}
		if s.MemLat != nil {
			fmt.Fprintf(&b, "; local mem %d cy", s.MemLat[s.Local.ID])
		}
		if s.MemBW != nil {
			fmt.Fprintf(&b, " %.1f GB/s", s.MemBW[s.Local.ID])
		}
		b.WriteByte('\n')
	}
	if t.NumSockets() > 1 {
		b.WriteString("  socket latencies:\n")
		for _, row := range t.socketLat {
			b.WriteString("   ")
			for _, v := range row {
				fmt.Fprintf(&b, " %4d", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CompareOS compares the inferred topology against the operating system's
// view (Section 3.6: "one basic sanity check is to compare the inferred
// MCTOP to the topology of the OS") and returns a human-readable list of
// divergences — empty when the two agree.
func (t *Topology) CompareOS(osCoreOfCtx, osSocketOfCtx, osNodeOfSocket []int) []string {
	var diffs []string
	n := t.NumHWContexts()
	if len(osCoreOfCtx) != n || len(osSocketOfCtx) != n {
		return []string{fmt.Sprintf("OS reports %d contexts, MCTOP has %d", len(osCoreOfCtx), n)}
	}
	// Same-core relation must match.
	coreMismatch := 0
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			mct := t.Context(x).Core == t.Context(y).Core
			osv := osCoreOfCtx[x] == osCoreOfCtx[y]
			if mct != osv {
				coreMismatch++
			}
		}
	}
	if coreMismatch > 0 {
		diffs = append(diffs, fmt.Sprintf("core grouping differs for %d context pairs", coreMismatch))
	}
	// Same-socket relation must match.
	sockMismatch := 0
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			mct := t.Context(x).Socket == t.Context(y).Socket
			osv := osSocketOfCtx[x] == osSocketOfCtx[y]
			if mct != osv {
				sockMismatch++
			}
		}
	}
	if sockMismatch > 0 {
		diffs = append(diffs, fmt.Sprintf("socket grouping differs for %d context pairs", sockMismatch))
	}
	// Socket-to-node mapping: map each MCTOP socket to the OS socket that
	// holds the same contexts, then compare claimed local nodes. This is
	// the check that catches the Opteron's misconfigured OS (footnote 1).
	if sockMismatch == 0 && len(osNodeOfSocket) > 0 {
		var nodeDiffs []int
		for _, s := range t.sockets {
			osSock := osSocketOfCtx[s.Contexts[0].ID]
			if osSock < 0 || osSock >= len(osNodeOfSocket) {
				continue
			}
			if osNodeOfSocket[osSock] != s.Local.ID {
				nodeDiffs = append(nodeDiffs, s.ID)
			}
		}
		if len(nodeDiffs) > 0 {
			sort.Ints(nodeDiffs)
			diffs = append(diffs, fmt.Sprintf(
				"socket-to-node mapping differs for sockets %v (OS may be misconfigured; rerun the memory-latency experiment to confirm)",
				nodeDiffs))
		}
	}
	return diffs
}
