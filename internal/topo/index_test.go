package topo

// Property tests for the precomputed query index: on all five golden
// platforms, the indexed hot paths (GetLatency, MaxLatencyBetween,
// PowerEstimate, the memoized socket orders) must equal the pre-index
// reference implementations they were built from — for every context pair
// and for random context subsets. The index changes cost, never results.

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

var goldenPlatformFiles = []string{
	"ivy.mctop", "westmere.mctop", "haswell.mctop", "opteron.mctop", "sparc.mctop",
}

func loadGolden(t *testing.T, file string) *Topology {
	t.Helper()
	top, err := LoadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("loading golden %s: %v", file, err)
	}
	return top
}

// randomSubset draws k distinct context ids (k may exceed n: duplicates are
// then deliberately included, since the public API accepts them).
func randomSubset(rng *rand.Rand, n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

func TestIndexGetLatencyMatchesWalk(t *testing.T) {
	for _, file := range goldenPlatformFiles {
		top := loadGolden(t, file)
		n := top.NumHWContexts()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if got, want := top.GetLatency(x, y), top.getLatencyWalk(x, y); got != want {
					t.Fatalf("%s: GetLatency(%d, %d) = %d, walk = %d", file, x, y, got, want)
				}
			}
		}
		// Out-of-range behavior is part of the contract.
		if got := top.GetLatency(-1, 0); got != -1 {
			t.Errorf("%s: GetLatency(-1, 0) = %d, want -1", file, got)
		}
		if got := top.GetLatency(0, n); got != -1 {
			t.Errorf("%s: GetLatency(0, n) = %d, want -1", file, got)
		}
		if got := top.GetLatency(n+3, n+3); got != 0 {
			t.Errorf("%s: GetLatency(x, x) = %d, want 0 even out of range", file, got)
		}
	}
}

func TestIndexMaxLatencyBetweenMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, file := range goldenPlatformFiles {
		top := loadGolden(t, file)
		n := top.NumHWContexts()
		for trial := 0; trial < 50; trial++ {
			k := 1 + rng.Intn(2*n)
			ctxs := randomSubset(rng, n, k)
			if trial%5 == 0 {
				ctxs = append(ctxs, -1, n+7) // unknown ids never contribute
			}
			if got, want := top.MaxLatencyBetween(ctxs), top.maxLatencyBetweenWalk(ctxs); got != want {
				t.Fatalf("%s: MaxLatencyBetween(%v) = %d, walk = %d", file, ctxs, got, want)
			}
		}
		if got := top.MaxLatencyBetween(nil); got != 0 {
			t.Errorf("%s: MaxLatencyBetween(nil) = %d, want 0", file, got)
		}
		if got, want := top.MaxLatency(), top.maxLatencyScan(); got != want {
			t.Errorf("%s: MaxLatency() = %d, scan = %d", file, got, want)
		}
	}
}

// floatsEqualULP compares power figures up to float summation order: the
// pre-index PowerEstimate accumulated per-core terms in map iteration order,
// which is nondeterministic in the last few ulps (it returns values differing
// at ~1e-14 for the same input across runs), while the indexed one sums in
// ascending core order. Equality therefore holds up to that reordering noise,
// never beyond it.
func floatsEqualULP(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		scale = m
	}
	return diff <= 1e-9*scale
}

func TestIndexPowerEstimateMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, file := range goldenPlatformFiles {
		top := loadGolden(t, file)
		n := top.NumHWContexts()
		for trial := 0; trial < 50; trial++ {
			ctxs := randomSubset(rng, n, 1+rng.Intn(n))
			if trial%7 == 0 {
				ctxs = append(ctxs, -5, n) // unknown ids are skipped
			}
			for _, withDRAM := range []bool{false, true} {
				gotPer, gotTotal := top.PowerEstimate(ctxs, withDRAM)
				wantPer, wantTotal := top.powerEstimateMap(ctxs, withDRAM)
				ok := floatsEqualULP(gotTotal, wantTotal) && len(gotPer) == len(wantPer)
				for i := 0; ok && i < len(gotPer); i++ {
					ok = floatsEqualULP(gotPer[i], wantPer[i])
				}
				if !ok {
					t.Fatalf("%s: PowerEstimate(%v, %v) = (%v, %v), map = (%v, %v)",
						file, ctxs, withDRAM, gotPer, gotTotal, wantPer, wantTotal)
				}
			}
		}
	}
}

func TestIndexSocketOrdersMatchSorts(t *testing.T) {
	for _, file := range goldenPlatformFiles {
		top := loadGolden(t, file)
		if got, want := top.SocketsByLocalBW(), top.socketsByLocalBWSort(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: SocketsByLocalBW mismatch", file)
		}
		for s := 0; s < top.NumSockets(); s++ {
			if got, want := top.SocketsByLatencyFrom(s), top.socketsByLatencyFromSort(s); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: SocketsByLatencyFrom(%d) mismatch", file, s)
			}
			sock := top.Socket(s)
			if got, want := top.SocketGetCores(sock), top.socketGetCoresScan(sock); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: SocketGetCores(%d) mismatch", file, s)
			}
		}
		for c := 0; c < top.NumHWContexts(); c += 7 {
			got := top.ContextsByLatencyFrom(c)
			if len(got) != top.NumHWContexts()-1 {
				t.Fatalf("%s: ContextsByLatencyFrom(%d) has %d entries", file, c, len(got))
			}
			for i := 1; i < len(got); i++ {
				la, lb := top.GetLatency(c, got[i-1]), top.GetLatency(c, got[i])
				if la > lb || (la == lb && got[i-1] > got[i]) {
					t.Fatalf("%s: ContextsByLatencyFrom(%d) out of order at %d", file, c, i)
				}
			}
		}
	}
}

// TestIndexReturnedSlicesAreCopies guards the memoization against callers
// that reorder the returned slices (placement builds sort socket lists).
func TestIndexReturnedSlicesAreCopies(t *testing.T) {
	top := loadGolden(t, "opteron.mctop")
	bw := top.SocketsByLocalBW()
	bw[0], bw[1] = bw[1], bw[0]
	if reflect.DeepEqual(bw, top.SocketsByLocalBW()) {
		t.Error("SocketsByLocalBW returned a shared slice")
	}
	near := top.SocketsByLatencyFrom(0)
	near[0], near[1] = near[1], near[0]
	if reflect.DeepEqual(near, top.SocketsByLatencyFrom(0)) {
		t.Error("SocketsByLatencyFrom returned a shared slice")
	}
	cores := top.SocketGetCores(top.Socket(0))
	cores[0], cores[1] = cores[1], cores[0]
	if reflect.DeepEqual(cores, top.SocketGetCores(top.Socket(0))) {
		t.Error("SocketGetCores returned a shared slice")
	}
}

// TestIndexConcurrentFirstUse exercises the lazy sync.Once build under
// concurrency (run with -race).
func TestIndexConcurrentFirstUse(t *testing.T) {
	top := loadGolden(t, "westmere.mctop")
	n := top.NumHWContexts()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				x, y := rng.Intn(n), rng.Intn(n)
				if got, want := top.GetLatency(x, y), top.getLatencyWalk(x, y); got != want {
					t.Errorf("GetLatency(%d, %d) = %d, want %d", x, y, got, want)
					return
				}
				top.MaxLatency()
				top.PowerEstimate([]int{x, y}, false)
			}
		}(g)
	}
	wg.Wait()
}

// TestSocketGetCoresForeignSocket pins the pre-index behavior: a socket
// belonging to another topology matches nothing.
func TestSocketGetCoresForeignSocket(t *testing.T) {
	a := loadGolden(t, "ivy.mctop")
	b := loadGolden(t, "ivy.mctop")
	if cores := a.SocketGetCores(b.Socket(0)); cores != nil {
		t.Errorf("foreign socket returned %d cores, want none", len(cores))
	}
	if cores := a.SocketGetCores(nil); cores != nil {
		t.Errorf("nil socket returned %d cores, want none", len(cores))
	}
}
