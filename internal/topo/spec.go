package topo

import (
	"fmt"
	"sort"
)

// Spec is the complete, serializable description of an MCTOP topology: what
// MCTOP-ALG produces, what description files store, and what FromSpec turns
// into the linked Topology structure.
type Spec struct {
	Name     string
	Contexts int
	Nodes    int
	// SMTWays is the number of hardware contexts per core (1 = no SMT).
	SMTWays int
	FreqGHz float64

	// Levels are the latency levels in ascending order. Intra-socket levels
	// (LevelGroup and the single LevelSocket) carry component partitions;
	// cross-socket levels (LevelCross) carry only their latency cluster.
	Levels []Level

	// NodeOfSocket maps socket index (the order of the socket level's
	// groups) to memory node id.
	NodeOfSocket []int

	// SocketLat is the full socket-to-socket latency matrix; the diagonal
	// holds the intra-socket latency.
	SocketLat [][]int64
	// SocketBW is the measured interconnect bandwidth matrix (optional).
	SocketBW [][]float64

	// MemLat / MemBW are the memory plugins' socket-by-node measurements
	// (optional until the plugins run).
	MemLat [][]int64
	MemBW  [][]float64
	// StreamCoreBW is the bandwidth one streaming core achieves (GB/s);
	// the RR_SCALE policy uses it to compute how many threads saturate a
	// node. 0 when the bandwidth plugin has not run.
	StreamCoreBW float64

	Cache *CacheInfo
	Power *PowerInfo
}

// socketLevelIdx returns the index of the socket level, or -1.
func (s *Spec) socketLevelIdx() int {
	for i, l := range s.Levels {
		if l.Kind == LevelSocket {
			return i
		}
	}
	return -1
}

// Validate checks the structural invariants libmctop relies on (the same
// symmetry rules it uses to detect mis-clustered measurements, Section 3.6).
func (s *Spec) Validate() error {
	if s.Contexts <= 0 {
		return fmt.Errorf("topo: %s: no hardware contexts", s.Name)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("topo: %s: no memory nodes", s.Name)
	}
	if s.SMTWays < 1 {
		return fmt.Errorf("topo: %s: SMTWays = %d", s.Name, s.SMTWays)
	}
	si := s.socketLevelIdx()
	if si < 0 {
		return fmt.Errorf("topo: %s: no socket level", s.Name)
	}
	prevLat := int64(0)
	prevGroups := 0
	for i, l := range s.Levels {
		if l.Median <= prevLat {
			return fmt.Errorf("topo: %s: level %d latency %d not above previous %d",
				s.Name, i, l.Median, prevLat)
		}
		prevLat = l.Median
		switch {
		case i < si:
			if l.Kind != LevelGroup {
				return fmt.Errorf("topo: %s: level %d below socket level has kind %v", s.Name, i, l.Kind)
			}
		case i == si:
		default:
			if l.Kind != LevelCross {
				return fmt.Errorf("topo: %s: level %d above socket level has kind %v", s.Name, i, l.Kind)
			}
			if l.Groups != nil {
				return fmt.Errorf("topo: %s: cross level %d must not carry groups", s.Name, i)
			}
			continue
		}
		// Grouped level: must partition the contexts into uniform,
		// nested components.
		if err := s.validatePartition(i, l, prevGroups); err != nil {
			return err
		}
		prevGroups = i + 1 // levels 0..i validated as grouped
	}
	nSockets := len(s.Levels[si].Groups)
	if len(s.NodeOfSocket) != nSockets {
		return fmt.Errorf("topo: %s: NodeOfSocket has %d entries for %d sockets",
			s.Name, len(s.NodeOfSocket), nSockets)
	}
	nodeSeen := make([]bool, s.Nodes)
	for sock, n := range s.NodeOfSocket {
		if n < 0 || n >= s.Nodes {
			return fmt.Errorf("topo: %s: socket %d mapped to invalid node %d", s.Name, sock, n)
		}
		nodeSeen[n] = true
	}
	for n, ok := range nodeSeen {
		if !ok {
			return fmt.Errorf("topo: %s: node %d has no socket", s.Name, n)
		}
	}
	if len(s.SocketLat) != nSockets {
		return fmt.Errorf("topo: %s: SocketLat is %dx? for %d sockets", s.Name, len(s.SocketLat), nSockets)
	}
	for i, row := range s.SocketLat {
		if len(row) != nSockets {
			return fmt.Errorf("topo: %s: SocketLat row %d has %d entries", s.Name, i, len(row))
		}
		for j, v := range row {
			if v <= 0 {
				return fmt.Errorf("topo: %s: SocketLat[%d][%d] = %d", s.Name, i, j, v)
			}
			if s.SocketLat[j][i] != v {
				return fmt.Errorf("topo: %s: SocketLat not symmetric at (%d,%d)", s.Name, i, j)
			}
		}
	}
	if s.MemLat != nil {
		if len(s.MemLat) != nSockets {
			return fmt.Errorf("topo: %s: MemLat has %d rows", s.Name, len(s.MemLat))
		}
		for i, row := range s.MemLat {
			if len(row) != s.Nodes {
				return fmt.Errorf("topo: %s: MemLat row %d has %d entries", s.Name, i, len(row))
			}
		}
	}
	if s.MemBW != nil && len(s.MemBW) != nSockets {
		return fmt.Errorf("topo: %s: MemBW has %d rows", s.Name, len(s.MemBW))
	}
	return nil
}

// validatePartition enforces the symmetry rules of Section 3.6 on one
// grouped level: every context in exactly one component, all components the
// same size, and every lower-level component contained in exactly one
// component of this level.
func (s *Spec) validatePartition(idx int, l Level, nLower int) error {
	if len(l.Groups) == 0 {
		return fmt.Errorf("topo: %s: level %d has no groups", s.Name, idx)
	}
	seen := make([]int, s.Contexts)
	for i := range seen {
		seen[i] = -1
	}
	size := len(l.Groups[0])
	for gi, g := range l.Groups {
		if len(g) != size {
			return fmt.Errorf("topo: %s: level %d group %d has %d contexts, others %d",
				s.Name, idx, gi, len(g), size)
		}
		for _, ctx := range g {
			if ctx < 0 || ctx >= s.Contexts {
				return fmt.Errorf("topo: %s: level %d group %d contains invalid context %d",
					s.Name, idx, gi, ctx)
			}
			if seen[ctx] != -1 {
				return fmt.Errorf("topo: %s: context %d in two groups of level %d", s.Name, ctx, idx)
			}
			seen[ctx] = gi
		}
	}
	for ctx, gi := range seen {
		if gi == -1 {
			return fmt.Errorf("topo: %s: context %d missing from level %d", s.Name, ctx, idx)
		}
	}
	// Nesting: every group of the previous grouped level must land in
	// exactly one group here.
	if idx > 0 && nLower > 0 {
		lower := s.Levels[idx-1]
		if lower.Groups != nil {
			for gi, g := range lower.Groups {
				target := seen[g[0]]
				for _, ctx := range g[1:] {
					if seen[ctx] != target {
						return fmt.Errorf("topo: %s: level %d group %d straddles level %d groups",
							s.Name, idx-1, gi, idx)
					}
				}
			}
		}
	}
	return nil
}

// FromSpec validates a spec and builds the linked Topology.
func FromSpec(spec Spec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	si := spec.socketLevelIdx()

	t := &Topology{
		name:      spec.Name,
		smtWays:   spec.SMTWays,
		freqGHz:   spec.FreqGHz,
		levels:    spec.Levels,
		groups:    make(map[int][]*HWCGroup),
		socketLat: spec.SocketLat,
		socketBW:  spec.SocketBW,
		cache:     spec.Cache,
		power:     spec.Power,
		spec:      spec,
	}

	// Contexts.
	t.contexts = make([]*HWContext, spec.Contexts)
	for i := range t.contexts {
		t.contexts[i] = &HWContext{ID: i}
	}

	// Nodes.
	t.nodes = make([]*Node, spec.Nodes)
	for i := range t.nodes {
		t.nodes[i] = &Node{ID: i}
	}

	// Sockets, in the socket level's group order.
	sockGroups := spec.Levels[si].Groups
	t.sockets = make([]*Socket, len(sockGroups))
	ctxSocket := make([]*Socket, spec.Contexts)
	for id, g := range sockGroups {
		s := &Socket{
			HWCGroup: HWCGroup{ID: id, Level: si, Latency: spec.Levels[si].Median},
		}
		sorted := append([]int(nil), g...)
		sort.Ints(sorted)
		for _, ctx := range sorted {
			s.Contexts = append(s.Contexts, t.contexts[ctx])
			t.contexts[ctx].Socket = s
			ctxSocket[ctx] = s
		}
		node := t.nodes[spec.NodeOfSocket[id]]
		s.Local = node
		node.Sockets = append(node.Sockets, s)
		if spec.MemLat != nil {
			s.MemLat = spec.MemLat[id]
		}
		if spec.MemBW != nil {
			s.MemBW = spec.MemBW[id]
			node.BW = spec.MemBW[id][node.ID]
		}
		if spec.MemLat != nil {
			node.Lat = spec.MemLat[id][node.ID]
		}
		t.sockets[id] = s
	}

	// Grouped levels below the socket level, bottom-up.
	var lower []*HWCGroup
	for li := 0; li < si; li++ {
		lv := spec.Levels[li]
		groups := make([]*HWCGroup, len(lv.Groups))
		// Deterministic ids: order groups by their smallest context.
		order := make([]int, len(lv.Groups))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return minOf(lv.Groups[order[a]]) < minOf(lv.Groups[order[b]])
		})
		for rank, gi := range order {
			g := lv.Groups[gi]
			grp := &HWCGroup{ID: rank, Level: li, Latency: lv.Median}
			sorted := append([]int(nil), g...)
			sort.Ints(sorted)
			for _, ctx := range sorted {
				grp.Contexts = append(grp.Contexts, t.contexts[ctx])
			}
			grp.Socket = ctxSocket[sorted[0]]
			groups[rank] = grp
		}
		t.groups[li] = groups
		// Link children.
		if li == 0 {
			lower = groups
		} else {
			for _, parent := range groups {
				for _, child := range lower {
					if containsCtx(parent, child.Contexts[0].ID) {
						parent.Children = append(parent.Children, child)
						child.Parent = parent
					}
				}
			}
			lower = groups
		}
	}
	// Attach the topmost intra-socket groups to their sockets.
	for _, child := range lower {
		s := child.Socket
		s.Children = append(s.Children, child)
		child.Parent = &s.HWCGroup
	}

	// Core groups: the first grouped level if SMT, else synthesized
	// singletons so placement policies can treat every machine uniformly.
	if spec.SMTWays > 1 && si == 0 {
		// Degenerate single-core sockets: each socket is one core.
		t.cores = make([]*HWCGroup, len(t.sockets))
		for i, s := range t.sockets {
			core := &HWCGroup{
				ID: i, Level: 0, Latency: spec.Levels[0].Median,
				Contexts: s.Contexts, Socket: s, Parent: &s.HWCGroup,
			}
			for _, c := range s.Contexts {
				c.Core = core
			}
			t.cores[i] = core
		}
	} else if spec.SMTWays > 1 {
		t.cores = t.groups[0]
		for _, core := range t.cores {
			for _, c := range core.Contexts {
				c.Core = core
			}
		}
	} else {
		t.cores = make([]*HWCGroup, spec.Contexts)
		for i, c := range t.contexts {
			core := &HWCGroup{
				ID: i, Level: -1, Latency: 0,
				Contexts: []*HWContext{c},
				Socket:   c.Socket,
				Parent:   &c.Socket.HWCGroup,
			}
			c.Core = core
			t.cores[i] = core
		}
	}
	// Re-number cores globally by (socket, first context).
	sort.SliceStable(t.cores, func(i, j int) bool {
		si, sj := t.cores[i].Socket.ID, t.cores[j].Socket.ID
		if si != sj {
			return si < sj
		}
		return t.cores[i].Contexts[0].ID < t.cores[j].Contexts[0].ID
	})
	for i, core := range t.cores {
		core.ID = i
	}

	// Interconnects, classified into hop counts by the cross levels.
	crossLevels := spec.Levels[si+1:]
	for a := 0; a < len(t.sockets); a++ {
		for b := 0; b < len(t.sockets); b++ {
			if a == b {
				continue
			}
			lat := spec.SocketLat[a][b]
			hops := 1
			for i, cl := range crossLevels {
				if lat >= cl.Min && lat <= cl.Max {
					hops = i + 1
					break
				}
			}
			ic := &Interconnect{From: t.sockets[a], To: t.sockets[b], Latency: lat, Hops: hops}
			if spec.SocketBW != nil {
				ic.BW = spec.SocketBW[a][b]
			}
			t.sockets[a].Interconnects = append(t.sockets[a].Interconnects, ic)
		}
	}

	t.linkHorizontal()
	return t, nil
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func containsCtx(g *HWCGroup, ctx int) bool {
	for _, c := range g.Contexts {
		if c.ID == ctx {
			return true
		}
	}
	return false
}

// linkHorizontal builds the proximity successor chains of Table 1: a
// context's Next is its SMT sibling, then the next core of the socket, then
// the next socket; cores chain within and across sockets.
func (t *Topology) linkHorizontal() {
	// Context order: socket by socket, core by core, SMT sibling by sibling.
	var order []*HWContext
	for _, s := range t.sockets {
		for _, core := range t.cores {
			if core.Socket != s {
				continue
			}
			order = append(order, core.Contexts...)
		}
	}
	for i, c := range order {
		c.Next = order[(i+1)%len(order)]
	}
	for i, core := range t.cores {
		core.Next = t.cores[(i+1)%len(t.cores)]
	}
	for i := range t.sockets {
		t.sockets[i].HWCGroup.Next = &t.sockets[(i+1)%len(t.sockets)].HWCGroup
	}
}

// Spec returns the originating spec (for serialization).
func (t *Topology) Spec() Spec { return t.spec }
