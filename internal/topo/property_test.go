package topo

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomSpec builds a random but structurally valid spec: S sockets x C
// cores x T SMT contexts, with plausible ascending latency levels and
// optional enrichment payloads — the generator behind the round-trip and
// construction property tests.
func randomSpec(rng *rand.Rand) Spec {
	sockets := rng.Intn(4) + 1
	cores := rng.Intn(6) + 1
	smt := 1
	if rng.Intn(2) == 1 {
		smt = rng.Intn(3) + 2 // 2..4
	}
	nCtx := sockets * cores * smt

	// Context numbering: consecutive per core.
	var coreGroups, sockGroups [][]int
	for s := 0; s < sockets; s++ {
		var sg []int
		for c := 0; c < cores; c++ {
			var cg []int
			for t := 0; t < smt; t++ {
				ctx := (s*cores+c)*smt + t
				cg = append(cg, ctx)
				sg = append(sg, ctx)
			}
			if smt > 1 {
				coreGroups = append(coreGroups, cg)
			}
		}
		sockGroups = append(sockGroups, sg)
	}

	var levels []Level
	lat := int64(rng.Intn(30) + 20)
	if smt > 1 {
		levels = append(levels, Level{
			Name: "core", Kind: LevelGroup, Min: lat - 1, Median: lat, Max: lat + 1,
			Groups: coreGroups,
		})
		lat = lat*3 + int64(rng.Intn(40))
	}
	// Degenerate machines where the socket is a single core: the socket
	// level must then be the first grouped level.
	if smt > 1 && cores == 1 {
		levels[len(levels)-1].Kind = LevelSocket
		levels[len(levels)-1].Name = "socket"
	} else {
		levels = append(levels, Level{
			Name: "socket", Kind: LevelSocket, Min: lat - 8, Median: lat, Max: lat + 8,
			Groups: sockGroups,
		})
	}
	cross := lat*3 + int64(rng.Intn(50))
	if sockets > 1 {
		levels = append(levels, Level{
			Name: "cross", Kind: LevelCross, Min: cross - 4, Median: cross, Max: cross + 4,
		})
	}
	sockLat := make([][]int64, sockets)
	for a := 0; a < sockets; a++ {
		sockLat[a] = make([]int64, sockets)
		for b := 0; b < sockets; b++ {
			if a == b {
				sockLat[a][b] = levelMedian(levels, LevelSocket)
			} else {
				sockLat[a][b] = cross
			}
		}
	}
	nodeOf := rng.Perm(sockets)

	spec := Spec{
		Name: "rand", Contexts: nCtx, Nodes: sockets, SMTWays: smt,
		FreqGHz: float64(rng.Intn(3)+1) + 0.5,
		Levels:  levels, NodeOfSocket: nodeOf, SocketLat: sockLat,
	}
	if rng.Intn(2) == 1 {
		spec.MemLat = make([][]int64, sockets)
		spec.MemBW = make([][]float64, sockets)
		for s := 0; s < sockets; s++ {
			spec.MemLat[s] = make([]int64, sockets)
			spec.MemBW[s] = make([]float64, sockets)
			for n := 0; n < sockets; n++ {
				spec.MemLat[s][n] = int64(200 + rng.Intn(400))
				spec.MemBW[s][n] = float64(rng.Intn(20) + 2)
			}
		}
		spec.StreamCoreBW = float64(rng.Intn(5) + 1)
	}
	if rng.Intn(3) == 0 {
		spec.Cache = &CacheInfo{LatL1: 4, LatL2: 12, LatLLC: 40,
			SizeL1: 32 << 10, SizeL2: 256 << 10, SizeLLC: 8 << 20}
	}
	return spec
}

func levelMedian(levels []Level, kind LevelKind) int64 {
	for _, l := range levels {
		if l.Kind == kind {
			return l.Median
		}
	}
	return 1
}

// Property: every randomly generated spec builds, and its description file
// round-trips to an identical spec.
func TestRandomSpecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng)
		if _, err := FromSpec(spec); err != nil {
			t.Logf("seed %d: FromSpec: %v", seed, err)
			return false
		}
		var buf bytes.Buffer
		if err := Encode(&buf, &spec); err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(&spec, got) {
			t.Logf("seed %d: round-trip mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: on every random topology the structural queries agree with the
// generator's arithmetic.
func TestRandomSpecQueries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng)
		top, err := FromSpec(spec)
		if err != nil {
			return false
		}
		smt := spec.SMTWays
		cores := spec.Contexts / smt
		if top.NumCores() != cores {
			t.Logf("seed %d: cores = %d, want %d", seed, top.NumCores(), cores)
			return false
		}
		// GetLatency is symmetric and zero only on the diagonal.
		for trial := 0; trial < 20; trial++ {
			x := rng.Intn(spec.Contexts)
			y := rng.Intn(spec.Contexts)
			lx := top.GetLatency(x, y)
			if lx != top.GetLatency(y, x) {
				return false
			}
			if (x == y) != (lx == 0) {
				return false
			}
		}
		// Every context's Next chain covers the machine exactly once.
		seen := map[int]bool{}
		c := top.Context(0)
		for i := 0; i < spec.Contexts; i++ {
			if seen[c.ID] {
				return false
			}
			seen[c.ID] = true
			c = c.Next
		}
		return c.ID == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
