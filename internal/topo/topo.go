// Package topo implements MCTOP, the multi-core topology abstraction of the
// EuroSys '17 paper (Section 2, Table 1).
//
// A Topology links together the paper's six structures — hw_context,
// hwc_group, socket, node, interconnect and mctop — both vertically (to
// represent the hierarchy) and horizontally (to traverse each level), and
// carries the enriched low-level measurements (communication latencies,
// memory latencies and bandwidths, cache and power information) that make
// portable performance policies expressible.
//
// Topologies are constructed from a Spec — the serializable description
// produced by MCTOP-ALG (internal/mctopalg) and stored in description
// files — and never mutated afterwards.
package topo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// LevelKind classifies a latency level of the topology.
type LevelKind int

const (
	// LevelGroup is an intra-socket grouping level (cores, cache clusters).
	LevelGroup LevelKind = iota
	// LevelSocket is the level whose components are sockets.
	LevelSocket
	// LevelCross is a cross-socket connectivity level (direct links, or the
	// "lvl 4" two-hop relation of Figures 1 and 2).
	LevelCross
)

func (k LevelKind) String() string {
	switch k {
	case LevelGroup:
		return "group"
	case LevelSocket:
		return "socket"
	case LevelCross:
		return "cross"
	}
	return fmt.Sprintf("LevelKind(%d)", int(k))
}

// Level describes one latency level: the cluster of measured latencies that
// formed it (min/median/max triplet) and, for intra-socket levels, the
// partition of hardware contexts into components.
type Level struct {
	Name   string
	Kind   LevelKind
	Min    int64
	Median int64
	Max    int64
	// Groups partitions context ids into the level's components. nil for
	// cross-socket levels, whose structure lives in the socket matrices.
	Groups [][]int
}

// HWContext is the lowest scheduling unit of the processor. If SMT exists
// it is a hardware context, otherwise it represents an actual core
// (Table 1).
type HWContext struct {
	ID     int
	Core   *HWCGroup // parent core group
	Socket *Socket
	// Next links contexts horizontally in proximity order: SMT siblings
	// first, then the other cores of the socket, then other sockets.
	Next *HWContext
}

// HWCGroup is a group of hw_contexts or of smaller hwc_groups: a core with
// its SMT contexts, or a cluster of cores sharing a cache level (Table 1).
type HWCGroup struct {
	ID      int
	Level   int // index into Topology.Levels; -1 for synthesized cores
	Latency int64
	// Contexts are the leaf hardware contexts under this group, ascending.
	Contexts []*HWContext
	// Children are the next-lower groups, nil for core-level groups.
	Children []*HWCGroup
	Parent   *HWCGroup
	Socket   *Socket
	Next     *HWCGroup
}

// Socket is an hwc_group with additional information about memory nodes and
// the interconnection with other sockets (Table 1).
type Socket struct {
	HWCGroup
	// Local is the socket's directly attached memory node.
	Local *Node
	// Interconnects lists this socket's links to every other socket,
	// ascending by peer socket id.
	Interconnects []*Interconnect
	// MemLat[n] / MemBW[n] are the measured latency (cycles) and bandwidth
	// (GB/s) from this socket to node n; nil before the memory plugins run.
	MemLat []int64
	MemBW  []float64
}

// Node is a memory node (Table 1).
type Node struct {
	ID int
	// Sockets lists the sockets this node is local to (usually one).
	Sockets []*Socket
	// Lat and BW are the measurements from the node's own socket.
	Lat int64
	BW  float64
}

// Interconnect is the connection between two sockets (Table 1).
type Interconnect struct {
	From, To *Socket
	Latency  int64
	// Hops is 1 for a direct link, 2 for the "lvl 4" non-direct relation.
	Hops int
	// BW is the link bandwidth in GB/s (0 if not measured).
	BW float64
}

// CacheInfo carries the cache plugin's measurements (Section 4): latency in
// cycles and size in bytes for each of the three cache levels.
type CacheInfo struct {
	LatL1, LatL2, LatLLC    int64
	SizeL1, SizeL2, SizeLLC int64
}

// PowerInfo carries the power plugin's RAPL-style measurements (Section 4).
type PowerInfo struct {
	Idle      float64 // idle processor power
	Full      float64 // all hardware contexts active
	FirstCtx  float64 // incremental power of a core's first context
	SecondCtx float64 // incremental power of a core's second context
	// PerSocketBase, PerFirstCtx, PerExtraCtx and DRAM parameterize the
	// placement power estimator used by the POWER policy and Figure 7.
	PerSocketBase, PerFirstCtx, PerExtraCtx, DRAM float64
}

// Available reports whether power measurements exist (Intel-only in the
// paper).
func (p *PowerInfo) Available() bool { return p != nil && p.PerSocketBase > 0 }

// Topology is the paper's mctop structure: it represents a processor and
// links everything together (Table 1).
type Topology struct {
	name     string
	smtWays  int
	freqGHz  float64
	levels   []Level
	contexts []*HWContext
	cores    []*HWCGroup
	// groups[l] holds the components of level l for intra-socket levels.
	groups  map[int][]*HWCGroup
	sockets []*Socket
	nodes   []*Node

	socketLat [][]int64
	socketBW  [][]float64

	cache *CacheInfo
	power *PowerInfo

	spec Spec // the originating spec, kept for serialization

	// idx is the precomputed query index (see index.go), built lazily on
	// the first hot-path query; idxOnce makes the build race-free, and the
	// atomic pointer keeps the steady-state load inlinable.
	idxOnce sync.Once
	idx     atomic.Pointer[queryIndex]
}

// Name returns the platform name the topology was inferred on.
func (t *Topology) Name() string { return t.name }

// NumHWContexts returns the number of hardware contexts.
func (t *Topology) NumHWContexts() int { return len(t.contexts) }

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return len(t.cores) }

// NumSockets returns the number of sockets.
func (t *Topology) NumSockets() int { return len(t.sockets) }

// NumNodes returns the number of memory nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// SMTWays returns the number of hardware contexts per core (1 = no SMT).
func (t *Topology) SMTWays() int { return t.smtWays }

// HasSMT reports whether the processor has simultaneous multi-threading.
func (t *Topology) HasSMT() bool { return t.smtWays > 1 }

// FreqGHz returns the maximum core frequency, when known.
func (t *Topology) FreqGHz() float64 { return t.freqGHz }

// Levels returns the latency levels, ascending.
func (t *Topology) Levels() []Level { return t.levels }

// Context returns the hardware context with the given id.
func (t *Topology) Context(id int) *HWContext {
	if id < 0 || id >= len(t.contexts) {
		return nil
	}
	return t.contexts[id]
}

// Contexts returns all hardware contexts in id order.
func (t *Topology) Contexts() []*HWContext { return t.contexts }

// Cores returns all core groups in id order.
func (t *Topology) Cores() []*HWCGroup { return t.cores }

// Socket returns the socket with the given id.
func (t *Topology) Socket(id int) *Socket {
	if id < 0 || id >= len(t.sockets) {
		return nil
	}
	return t.sockets[id]
}

// Sockets returns all sockets in id order.
func (t *Topology) Sockets() []*Socket { return t.sockets }

// Node returns the memory node with the given id.
func (t *Topology) Node(id int) *Node {
	if id < 0 || id >= len(t.nodes) {
		return nil
	}
	return t.nodes[id]
}

// Nodes returns all memory nodes in id order.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Cache returns the cache plugin's measurements, or nil.
func (t *Topology) Cache() *CacheInfo { return t.cache }

// Power returns the power plugin's measurements, or nil.
func (t *Topology) Power() *PowerInfo { return t.power }

// GetLocalNode returns the local memory node of a hardware context — the
// paper's mctop_get_local_node(hw_ctx).
func (t *Topology) GetLocalNode(ctx int) *Node {
	c := t.Context(ctx)
	if c == nil {
		return nil
	}
	return c.Socket.Local
}

// SocketGetCores returns the cores of a socket — the paper's
// mctop_socket_get_cores(socket). The result is a copy of the index's
// memoized per-socket slice, so callers may reorder it freely.
func (t *Topology) SocketGetCores(s *Socket) []*HWCGroup {
	if s == nil || s.ID < 0 || s.ID >= len(t.sockets) || t.sockets[s.ID] != s {
		// A socket of another topology: fall back to the identity scan,
		// which correctly finds nothing.
		return t.socketGetCoresScan(s)
	}
	cached := t.index().socketCores[s.ID]
	if cached == nil {
		return nil
	}
	return append([]*HWCGroup(nil), cached...)
}

// GetLatency returns the communication latency between two hardware
// contexts — the paper's mctop_get_latency(id0, id1). Zero for a context
// with itself. An O(1) matrix lookup (index.go); -1 for unknown contexts.
func (t *Topology) GetLatency(x, y int) int64 {
	if x == y {
		return 0
	}
	idx := t.index()
	if uint(x) >= uint(idx.n) || uint(y) >= uint(idx.n) {
		return -1
	}
	return idx.lat[x*idx.n+y]
}

// SocketLatency returns the communication latency between two sockets
// (intra-socket latency when s1 == s2).
func (t *Topology) SocketLatency(s1, s2 int) int64 {
	if s1 < 0 || s2 < 0 || s1 >= len(t.sockets) || s2 >= len(t.sockets) {
		return -1
	}
	return t.socketLat[s1][s2]
}

// SocketBW returns the measured interconnect bandwidth between two sockets,
// or 0 when unknown.
func (t *Topology) SocketBW(s1, s2 int) float64 {
	if t.socketBW == nil || s1 < 0 || s2 < 0 || s1 >= len(t.sockets) || s2 >= len(t.sockets) {
		return 0
	}
	return t.socketBW[s1][s2]
}

// MaxLatency returns the maximum communication latency on the machine —
// the backoff quantum of the paper's educated-backoff policy when all
// contexts participate. Memoized in the query index.
func (t *Topology) MaxLatency() int64 {
	return t.index().maxLat
}

// MaxLatencyBetween returns the maximum communication latency among the
// given hardware contexts (Section 5: "the backoff quantum is the maximum
// latency between any two threads involved in the execution"). Instead of
// the pre-index O(k²) tree walks, participants are bucketed by socket: the
// cross-socket latency of a pair depends only on its socket pair, so all
// cross-socket pairs collapse to one socket-matrix lookup per occupied
// socket pair, and only intra-socket pairs read the context matrix —
// O(k + s² + Σ kₛ²) array reads, no tree walks. Unknown context ids never
// contribute (their pairwise latency is -1).
func (t *Topology) MaxLatencyBetween(ctxs []int) int64 {
	idx := t.index()
	// Small sets (the common lock-participant case): the pairwise matrix
	// loop beats the bucketing below, and allocates nothing.
	if len(ctxs) <= 8 {
		var max int64
		for i := 0; i < len(ctxs); i++ {
			x := ctxs[i]
			if x < 0 || x >= idx.n {
				continue
			}
			row := idx.lat[x*idx.n : (x+1)*idx.n]
			for j := i + 1; j < len(ctxs); j++ {
				y := ctxs[j]
				if y >= 0 && y < idx.n && row[y] > max {
					max = row[y]
				}
			}
		}
		return max
	}
	nS := len(t.sockets)
	// Bucket the valid participants by socket: counts, then a flat
	// offset-indexed scratch (no per-socket allocations).
	counts := make([]int, nS)
	valid := 0
	for _, x := range ctxs {
		if x >= 0 && x < idx.n {
			counts[idx.socketIdx[x]]++
			valid++
		}
	}
	offs := make([]int, nS+1)
	for s := 0; s < nS; s++ {
		offs[s+1] = offs[s] + counts[s]
	}
	flat := make([]int, valid)
	fill := append([]int(nil), offs[:nS]...)
	for _, x := range ctxs {
		if x >= 0 && x < idx.n {
			s := idx.socketIdx[x]
			flat[fill[s]] = x
			fill[s]++
		}
	}
	var max int64
	for s1 := 0; s1 < nS; s1++ {
		if counts[s1] == 0 {
			continue
		}
		// Cross-socket: one lookup per occupied socket pair.
		for s2 := s1 + 1; s2 < nS; s2++ {
			if counts[s2] == 0 {
				continue
			}
			if l := t.socketLat[s1][s2]; l > max {
				max = l
			}
		}
		// Intra-socket: pairwise matrix reads within the bucket.
		bucket := flat[offs[s1]:offs[s1+1]]
		for i := 0; i < len(bucket); i++ {
			row := idx.lat[bucket[i]*idx.n : (bucket[i]+1)*idx.n]
			for j := i + 1; j < len(bucket); j++ {
				if l := row[bucket[j]]; l > max {
					max = l
				}
			}
		}
	}
	return max
}

// SocketsByLatencyFrom returns the other sockets ordered by communication
// latency from s (closest first) — the primitive behind "use the socket
// closest to socket x" policies. The order is memoized per socket; the
// returned slice is a copy. Nil for an unknown socket id.
func (t *Topology) SocketsByLatencyFrom(s int) []*Socket {
	if s < 0 || s >= len(t.sockets) {
		return nil
	}
	return append([]*Socket(nil), t.index().byLatencyFrom[s]...)
}

// SocketsByLocalBW returns the sockets ordered by local memory bandwidth,
// best first — the seed of the CON_* and RR placement policies (Table 2).
// Sockets without memory measurements keep id order at the end. The order
// is memoized; the returned slice is a copy.
func (t *Topology) SocketsByLocalBW() []*Socket {
	return append([]*Socket(nil), t.index().byLocalBW...)
}

func localBW(s *Socket) float64 {
	if s.Local == nil {
		return 0
	}
	return s.Local.BW
}

// MinLatencyPair returns the pair of distinct sockets with the lowest
// communication latency ("use any two sockets that minimize latency").
func (t *Topology) MinLatencyPair() (a, b *Socket) {
	best := int64(-1)
	for i := 0; i < len(t.sockets); i++ {
		for j := i + 1; j < len(t.sockets); j++ {
			l := t.socketLat[i][j]
			if best == -1 || l < best {
				best = l
				a, b = t.sockets[i], t.sockets[j]
			}
		}
	}
	return a, b
}

// MaxBWPair returns the pair of distinct sockets with the highest
// interconnect bandwidth ("use two sockets with maximum bandwidth"), or
// the min-latency pair when bandwidths are unknown.
func (t *Topology) MaxBWPair() (a, b *Socket) {
	best := -1.0
	for i := 0; i < len(t.sockets); i++ {
		for j := i + 1; j < len(t.sockets); j++ {
			if bw := t.SocketBW(i, j); bw > best {
				best = bw
				a, b = t.sockets[i], t.sockets[j]
			}
		}
	}
	if best <= 0 {
		return t.MinLatencyPair()
	}
	return a, b
}

// ContextsByLatencyFrom returns all other hardware contexts ordered by
// latency from ctx, closest first — the victim order of topology-aware work
// stealing (Section 5). Sort keys come straight out of the latency matrix.
func (t *Topology) ContextsByLatencyFrom(ctx int) []int {
	idx := t.index()
	type entry struct {
		id  int
		lat int64
	}
	var row []int64
	if ctx >= 0 && ctx < idx.n {
		row = idx.lat[ctx*idx.n : (ctx+1)*idx.n]
	}
	es := make([]entry, 0, idx.n)
	for _, c := range t.contexts {
		if c.ID == ctx {
			continue
		}
		l := int64(-1)
		if row != nil {
			l = row[c.ID]
		}
		es = append(es, entry{c.ID, l})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lat != es[j].lat {
			return es[i].lat < es[j].lat
		}
		return es[i].id < es[j].id
	})
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.id
	}
	return out
}

// PowerEstimate estimates package power for a set of active contexts using
// the power plugin's model (0 when power data is unavailable). The index's
// flat ctx→core and ctx→socket tables replace the per-call maps and pointer
// chases of the pre-index implementation; core contributions accumulate in
// ascending core order, so the result is deterministic.
func (t *Topology) PowerEstimate(ctxs []int, withDRAM bool) (perSocket []float64, total float64) {
	perSocket = make([]float64, len(t.sockets))
	if !t.power.Available() {
		return perSocket, 0
	}
	idx := t.index()
	ctxPerCore := make([]int32, len(t.cores))
	active := make([]bool, len(t.sockets))
	for _, id := range ctxs {
		if id < 0 || id >= idx.n {
			continue
		}
		ctxPerCore[idx.coreIdx[id]]++
		active[idx.socketIdx[id]] = true
	}
	for s := range t.sockets {
		if active[s] {
			perSocket[s] = t.power.PerSocketBase
			if withDRAM {
				perSocket[s] += t.power.DRAM
			}
		}
	}
	for core, n := range ctxPerCore {
		if n > 0 {
			perSocket[t.cores[core].Socket.ID] += t.power.PerFirstCtx + float64(n-1)*t.power.PerExtraCtx
		}
	}
	for _, p := range perSocket {
		total += p
	}
	return perSocket, total
}
