// Package locks implements the spinlock algorithms of Section 7.1 of the
// MCTOP paper — test-and-set (TAS), test-and-test-and-set (TTAS) and ticket
// locks — each with an optional MCTOP-derived "educated backoff".
//
// The educated-backoff policy (Section 5) sets the backoff quantum to the
// maximum communication latency between any two participating threads:
// messages on a multi-core travel as fast as the coherence protocol, so
// there is no point re-probing a contended line faster than an answer
// could possibly arrive. Ticket locks additionally scale the backoff by the
// thread's distance from the head of the queue.
//
// These are real, runnable Go locks (used by the examples and tests); the
// deterministic reproduction of Figure 8 runs the same algorithms inside
// the lock-contention simulator of internal/contend.
package locks

import (
	"sync/atomic"

	"repro/internal/topo"
)

// Lock is a spinlock.
type Lock interface {
	Lock()
	Unlock()
}

// Backoff abstracts how a thread waits before re-probing the lock.
type Backoff struct {
	// Quantum is the basic wait, in spin iterations. 0 means the baseline
	// behaviour: a single pause per probe.
	Quantum int64
	// Proportional scales the wait by a position hint (ticket locks).
	Proportional bool
}

// EducatedBackoff derives the backoff quantum from the topology: the
// maximum communication latency among the participating hardware contexts.
// A nil/empty ctxs means "whole machine".
func EducatedBackoff(t *topo.Topology, ctxs []int, proportional bool) Backoff {
	var q int64
	if len(ctxs) == 0 {
		q = t.MaxLatency()
	} else {
		q = t.MaxLatencyBetween(ctxs)
	}
	return Backoff{Quantum: q, Proportional: proportional}
}

// pause burns roughly n cycles without touching shared memory — the role
// the pause instruction plays in the paper's baselines.
func pause(n int64) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := int64(0); i < n; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 {
		panic("unreachable")
	}
}

// wait applies the backoff for the given queue position (1 = next in line).
func (b Backoff) wait(position int64) {
	q := b.Quantum
	if q <= 0 {
		q = 35 // baseline: one pause-instruction-sized breath
	}
	if b.Proportional && position > 1 {
		q *= position
	}
	pause(q)
}

// TAS is a test-and-set spinlock: every probe is an atomic exchange.
type TAS struct {
	state   int32
	Backoff Backoff
}

var _ Lock = (*TAS)(nil)

// Lock acquires the lock, backing off after every failed probe.
func (l *TAS) Lock() {
	for !atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		l.Backoff.wait(1)
	}
}

// Unlock releases the lock.
func (l *TAS) Unlock() {
	atomic.StoreInt32(&l.state, 0)
}

// TTAS is a test-and-test-and-set spinlock: it spins reading its cached
// copy and only attempts the atomic exchange when the lock looks free.
type TTAS struct {
	state   int32
	Backoff Backoff
}

var _ Lock = (*TTAS)(nil)

// Lock acquires the lock.
func (l *TTAS) Lock() {
	for {
		if atomic.LoadInt32(&l.state) == 0 &&
			atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			return
		}
		l.Backoff.wait(1)
	}
}

// Unlock releases the lock.
func (l *TTAS) Unlock() {
	atomic.StoreInt32(&l.state, 0)
}

// Ticket is a ticket lock: acquirers take a ticket and wait until the grant
// counter reaches it, guaranteeing FIFO order. With an educated backoff the
// wait between probes is proportional to the thread's queue position
// (Section 7.1: "we set the backoff to be proportional to the position of
// the thread in the queue").
type Ticket struct {
	next    int64
	grant   int64
	Backoff Backoff
}

var _ Lock = (*Ticket)(nil)

// Lock acquires the lock in FIFO order.
func (l *Ticket) Lock() {
	my := atomic.AddInt64(&l.next, 1) - 1
	for {
		cur := atomic.LoadInt64(&l.grant)
		if cur == my {
			return
		}
		l.Backoff.wait(my - cur)
	}
}

// Unlock passes the lock to the next ticket holder.
func (l *Ticket) Unlock() {
	atomic.AddInt64(&l.grant, 1)
}

// Algorithm names the lock algorithms of Figure 8.
type Algorithm int

const (
	// AlgTAS is the test-and-set lock.
	AlgTAS Algorithm = iota
	// AlgTTAS is the test-and-test-and-set lock.
	AlgTTAS
	// AlgTicket is the ticket lock.
	AlgTicket
)

func (a Algorithm) String() string {
	switch a {
	case AlgTAS:
		return "TAS"
	case AlgTTAS:
		return "TTAS"
	case AlgTicket:
		return "TICKET"
	}
	return "Algorithm(?)"
}

// Algorithms returns the three lock algorithms of the evaluation.
func Algorithms() []Algorithm { return []Algorithm{AlgTAS, AlgTTAS, AlgTicket} }

// New builds a lock of the given algorithm with a backoff policy. For
// ticket locks the backoff is made proportional automatically, following
// the paper.
func New(a Algorithm, b Backoff) Lock {
	switch a {
	case AlgTAS:
		return &TAS{Backoff: b}
	case AlgTTAS:
		return &TTAS{Backoff: b}
	case AlgTicket:
		b.Proportional = b.Quantum > 0
		return &Ticket{Backoff: b}
	}
	return nil
}
