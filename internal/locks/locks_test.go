package locks

import (
	"sync"
	"testing"

	"repro/internal/topo"
)

// mutualExclusion hammers a lock from several goroutines and checks the
// protected counter.
func mutualExclusion(t *testing.T, l Lock, workers, iters int) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestMutualExclusionAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, quantum := range []int64{0, 300} {
			l := New(alg, Backoff{Quantum: quantum})
			t.Run(alg.String(), func(t *testing.T) {
				mutualExclusion(t, l, 8, 2000)
			})
		}
	}
}

func TestTicketFIFO(t *testing.T) {
	// With a single goroutine interleaving acquires, the ticket lock must
	// hand out strictly increasing tickets.
	l := &Ticket{}
	for i := 0; i < 100; i++ {
		l.Lock()
		l.Unlock()
	}
	if l.next != 100 || l.grant != 100 {
		t.Errorf("ticket counters = %d/%d", l.next, l.grant)
	}
}

func TestUncontendedFastPath(t *testing.T) {
	for _, alg := range Algorithms() {
		l := New(alg, Backoff{})
		l.Lock()
		l.Unlock()
		l.Lock()
		l.Unlock()
	}
}

func TestEducatedBackoffQuantum(t *testing.T) {
	spec := testSpec()
	tp, err := topo.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Whole machine: cross-socket latency.
	b := EducatedBackoff(tp, nil, false)
	if b.Quantum != 308 {
		t.Errorf("whole-machine quantum = %d, want 308", b.Quantum)
	}
	// Same-socket participants: intra-socket latency.
	b = EducatedBackoff(tp, []int{0, 1, 2}, false)
	if b.Quantum != 112 {
		t.Errorf("intra quantum = %d, want 112", b.Quantum)
	}
	// Same-core participants: SMT latency.
	b = EducatedBackoff(tp, []int{0, 20}, false)
	if b.Quantum != 28 {
		t.Errorf("core quantum = %d, want 28", b.Quantum)
	}
}

func TestNewTicketProportional(t *testing.T) {
	l := New(AlgTicket, Backoff{Quantum: 100})
	tk := l.(*Ticket)
	if !tk.Backoff.Proportional {
		t.Error("educated ticket backoff should be proportional")
	}
	base := New(AlgTicket, Backoff{})
	if base.(*Ticket).Backoff.Proportional {
		t.Error("baseline ticket backoff should not be proportional")
	}
}

// testSpec is a tiny Ivy-like topology for quantum tests.
func testSpec() topo.Spec {
	nCores := 20
	coreGroups := make([][]int, nCores)
	for c := 0; c < nCores; c++ {
		coreGroups[c] = []int{c, c + nCores}
	}
	sockGroups := make([][]int, 2)
	for s := 0; s < 2; s++ {
		for c := 0; c < 10; c++ {
			core := s*10 + c
			sockGroups[s] = append(sockGroups[s], core, core+nCores)
		}
	}
	return topo.Spec{
		Name: "t", Contexts: 40, Nodes: 2, SMTWays: 2,
		Levels: []topo.Level{
			{Name: "core", Kind: topo.LevelGroup, Min: 27, Median: 28, Max: 29, Groups: coreGroups},
			{Name: "socket", Kind: topo.LevelSocket, Min: 96, Median: 112, Max: 128, Groups: sockGroups},
			{Name: "cross", Kind: topo.LevelCross, Min: 300, Median: 308, Max: 316},
		},
		NodeOfSocket: []int{0, 1},
		SocketLat:    [][]int64{{112, 308}, {308, 112}},
	}
}
