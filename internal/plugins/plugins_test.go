package plugins

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/sim"
	"repro/internal/topo"
)

func inferred(t *testing.T, p *sim.Platform, seed uint64) (*machine.SimMachine, *topo.Topology) {
	t.Helper()
	m, err := machine.NewSim(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	return m, res.Topology
}

func TestEnrichIvy(t *testing.T) {
	p := sim.Ivy()
	m, base := inferred(t, p, 3)
	top, err := Enrich(m, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	s0 := top.Socket(0)
	if s0.MemLat == nil || s0.MemBW == nil {
		t.Fatal("memory measurements missing after enrichment")
	}
	// Latencies within a few cycles of ground truth.
	for s := 0; s < 2; s++ {
		for n := 0; n < 2; n++ {
			got := top.Socket(s).MemLat[n]
			want := p.MemLat[s][n]
			if d := got - want; d < -6 || d > 6 {
				t.Errorf("MemLat[%d][%d] = %d, want ~%d", s, n, got, want)
			}
		}
	}
	// Bandwidths saturate at the platform's node bandwidth.
	if got := top.Socket(0).MemBW[0]; math.Abs(got-15.9) > 0.2 {
		t.Errorf("local BW socket 0 = %g, want 15.9", got)
	}
	if got := top.Socket(1).MemBW[1]; math.Abs(got-8.37) > 0.2 {
		t.Errorf("local BW socket 1 = %g, want 8.37", got)
	}
	// Node objects carry their own figures.
	if top.Node(0).BW == 0 || top.Node(0).Lat == 0 {
		t.Error("node 0 has no measurements")
	}
	// Single-core stream bandwidth for RR_SCALE.
	if got := top.Spec().StreamCoreBW; math.Abs(got-p.CoreStreamBW) > 0.01 {
		t.Errorf("StreamCoreBW = %g, want %g", got, p.CoreStreamBW)
	}
	// Cache plugin: OS sizes, measured latencies.
	c := top.Cache()
	if c == nil {
		t.Fatal("cache info missing")
	}
	if c.SizeL1 != 32<<10 || c.SizeL2 != 256<<10 || c.SizeLLC != 25<<20 {
		t.Errorf("cache sizes = %d/%d/%d", c.SizeL1, c.SizeL2, c.SizeLLC)
	}
	if c.LatL1 < 3 || c.LatL1 > 6 {
		t.Errorf("L1 latency = %d, want ~4", c.LatL1)
	}
	if !(c.LatL1 < c.LatL2) {
		t.Errorf("latency steps broken: %d %d %d", c.LatL1, c.LatL2, c.LatLLC)
	}
	// Power plugin reconstructs the model used by Figure 7.
	pw := top.Power()
	if !pw.Available() {
		t.Fatal("power info missing on Ivy")
	}
	if math.Abs(pw.PerSocketBase-20.1) > 0.01 || math.Abs(pw.PerFirstCtx-3.2) > 0.01 ||
		math.Abs(pw.PerExtraCtx-1.46) > 0.01 || math.Abs(pw.DRAM-45.25) > 0.01 {
		t.Errorf("power model = base %.2f first %.2f extra %.2f dram %.2f",
			pw.PerSocketBase, pw.PerFirstCtx, pw.PerExtraCtx, pw.DRAM)
	}
	if pw.Idle != 40 {
		t.Errorf("idle = %g, want 40", pw.Idle)
	}
	// Full power: 2 sockets fully loaded.
	wantFull := 2*20.1 + 20*3.2 + 20*1.46
	if math.Abs(pw.Full-wantFull) > 0.1 {
		t.Errorf("full power = %.1f, want %.1f", pw.Full, wantFull)
	}
	// PowerEstimate through the enriched topology matches the platform.
	ctxs := []int{0, 20, 1, 21}
	perT, totT := top.PowerEstimate(ctxs, false)
	perP, totP := p.PowerEstimate(ctxs, false)
	if math.Abs(totT-totP) > 0.01 || math.Abs(perT[0]-perP[0]) > 0.01 {
		t.Errorf("topology power estimate %.2f vs platform %.2f", totT, totP)
	}
}

// TestEnrichOpteron: no power (non-Intel), but memory matrices must show
// the paper's Figure 1a shape — local 143, sibling 247, one-hop ~262,
// two-hop ~343 — despite the wrong OS node mapping.
func TestEnrichOpteron(t *testing.T) {
	p := sim.Opteron()
	m, base := inferred(t, p, 5)
	top, err := Enrich(m, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if top.Power().Available() {
		t.Error("Opteron must not report power")
	}
	s0 := top.Socket(0)
	local := s0.Local.ID
	if got := s0.MemLat[local]; got < 140 || got > 147 {
		t.Errorf("local latency = %d, want ~143", got)
	}
	// The sibling node is the second closest.
	var lats []int64
	for n := 0; n < 8; n++ {
		if n != local {
			lats = append(lats, s0.MemLat[n])
		}
	}
	second := int64(1 << 62)
	for _, l := range lats {
		if l < second {
			second = l
		}
	}
	if second < 243 || second > 252 {
		t.Errorf("sibling latency = %d, want ~247", second)
	}
	if got := s0.MemBW[local]; math.Abs(got-10.9) > 0.2 {
		t.Errorf("local BW = %g, want 10.9", got)
	}
}

func TestEnrichSelectedPlugins(t *testing.T) {
	p := sim.Ivy()
	m, base := inferred(t, p, 9)
	top, err := Enrich(m, base, []Plugin{MemLatency{Probes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if top.Socket(0).MemLat == nil {
		t.Error("memory latency missing")
	}
	if top.Socket(0).MemBW != nil {
		t.Error("bandwidth should not have been measured")
	}
	if top.Cache() != nil {
		t.Error("cache should not have been measured")
	}
}

// TestEnrichedRoundTrip: the enriched spec survives the description file.
func TestEnrichedRoundTrip(t *testing.T) {
	p := sim.Ivy()
	m, base := inferred(t, p, 11)
	top, err := Enrich(m, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/ivy.mct"
	if err := topo.SaveFile(path, top); err != nil {
		t.Fatal(err)
	}
	loaded, err := topo.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cache() == nil || !loaded.Power().Available() {
		t.Error("enrichment lost in round trip")
	}
	if loaded.Socket(0).MemBW[0] != top.Socket(0).MemBW[0] {
		t.Error("bandwidth lost in round trip")
	}
	if loaded.Spec().StreamCoreBW != top.Spec().StreamCoreBW {
		t.Error("stream bandwidth lost in round trip")
	}
}

// TestPluginsSkipUnsupported: a machine without probers (the host backend)
// skips all plugins without error.
func TestPluginsSkipUnsupported(t *testing.T) {
	// The host machine implements Machine but not MemoryProber/PowerProber.
	host := machine.NewHost()
	spec := topo.Spec{}
	for _, p := range All() {
		err := p.Run(host, nil, &spec)
		if _, ok := err.(ErrUnsupported); !ok {
			t.Errorf("%s: expected ErrUnsupported, got %v", p.Name(), err)
		}
	}
}
