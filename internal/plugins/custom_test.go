package plugins

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topo"
)

// interconnectHopPlugin is a user-written plugin, demonstrating the
// extension point the paper advertises ("developers can write their own
// plugins to further enrich MCTOP"): it derives per-hop interconnect
// latencies from the already-inferred socket matrix and records the
// slowest direct link in the spec's cross-level names.
type interconnectHopPlugin struct {
	worstDirect int64 // written by Run for the test to inspect
}

func (p *interconnectHopPlugin) Name() string { return "interconnect-hops" }

func (p *interconnectHopPlugin) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	for a := 0; a < t.NumSockets(); a++ {
		for b := a + 1; b < t.NumSockets(); b++ {
			for _, ic := range t.Socket(a).Interconnects {
				if ic.To.ID == b && ic.Hops == 1 && ic.Latency > p.worstDirect {
					p.worstDirect = ic.Latency
				}
			}
		}
	}
	return nil
}

func TestCustomPluginRuns(t *testing.T) {
	p := sim.Opteron()
	m, base := inferred(t, p, 77)
	custom := &interconnectHopPlugin{}
	if _, err := Enrich(m, base, []Plugin{custom}); err != nil {
		t.Fatal(err)
	}
	// Hops counts cross-level rank: rank-1 links on the Opteron are the
	// ~197-cycle MCM-sibling links.
	if custom.worstDirect < 190 || custom.worstDirect > 204 {
		t.Errorf("worst rank-1 link = %d, want ~197", custom.worstDirect)
	}
}

// TestPluginErrorPropagates: a failing custom plugin aborts enrichment
// with a wrapped error.
type failingPlugin struct{}

func (failingPlugin) Name() string { return "failing" }
func (failingPlugin) Run(machine.Machine, *topo.Topology, *topo.Spec) error {
	return errBoom
}

var errBoom = &bootError{}

type bootError struct{}

func (*bootError) Error() string { return "boom" }

func TestPluginErrorPropagates(t *testing.T) {
	p := sim.Ivy()
	m, base := inferred(t, p, 78)
	if _, err := Enrich(m, base, []Plugin{failingPlugin{}}); err == nil {
		t.Fatal("expected enrichment to fail")
	}
}
