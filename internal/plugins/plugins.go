// Package plugins implements the four enrichment plugins of Section 4 of
// the MCTOP paper: memory latency, memory bandwidth, cache latency/size and
// power. Each plugin measures the machine through the optional prober
// interfaces of internal/machine and returns an enriched topology spec;
// "essentially, libmctop gives the best-case bandwidth and latency of a
// multi-core — these characteristics in the absence of contention."
//
// Plugins are pure functions from (machine, topology) to an updated spec:
// the topology itself is immutable, so enrichment rebuilds it.
package plugins

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Plugin measures one aspect of the machine and records it into the spec.
// Custom plugins can be added by implementing this interface ("developers
// can write their own plugins to further enrich MCTOP").
type Plugin interface {
	Name() string
	// Run measures m and mutates spec in place. t is the already inferred
	// base topology (for structure queries). Run returns an error only for
	// real failures; machines lacking the needed prober are skipped with
	// ErrUnsupported.
	Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error
}

// ErrUnsupported is returned by plugins whose prober the machine lacks
// (e.g. power on non-Intel platforms).
type ErrUnsupported struct{ PluginName string }

func (e ErrUnsupported) Error() string {
	return fmt.Sprintf("plugins: machine does not support %s measurements", e.PluginName)
}

// All returns the paper's four essential plugins in their natural order.
func All() []Plugin {
	return []Plugin{MemLatency{}, MemBandwidth{}, Cache{}, Power{}}
}

// Enrich runs the given plugins (All() if nil) over a topology and returns
// the enriched, rebuilt topology. Unsupported plugins are skipped.
func Enrich(m machine.Machine, t *topo.Topology, ps []Plugin) (*topo.Topology, error) {
	if ps == nil {
		ps = All()
	}
	spec := t.Spec()
	for _, p := range ps {
		err := p.Run(m, t, &spec)
		if err == nil {
			continue
		}
		if _, skip := err.(ErrUnsupported); skip {
			continue
		}
		return nil, fmt.Errorf("plugins: %s: %w", p.Name(), err)
	}
	return topo.FromSpec(spec)
}

// repCtx returns a representative hardware context of each socket (its
// first context).
func repCtx(t *topo.Topology) []int {
	reps := make([]int, t.NumSockets())
	for i, s := range t.Sockets() {
		reps[i] = s.Contexts[0].ID
	}
	return reps
}

// dvfsWait spins until consecutive calibrated loops take the same time —
// plugins need warm cores for exactly the same reason MCTOP-ALG does
// (Section 3.5).
func dvfsWait(m machine.Machine, t machine.Thread) {
	const unit = 1_000_000
	const maxIters = 64
	prev := m.SpinSolo(t, unit)
	stable := 0
	for i := 0; i < maxIters; i++ {
		cur := m.SpinSolo(t, unit)
		diff := cur - prev
		if diff < 0 {
			diff = -diff
		}
		if diff*100 <= prev {
			stable++
			if stable >= 2 {
				return
			}
		} else {
			stable = 0
		}
		prev = cur
	}
}

// MemLatency measures the load latency from every socket to every node
// using a randomly connected linked list of cache lines, "resulting in
// cache misses for almost every iteration" (Section 4).
type MemLatency struct {
	// Probes is the number of dependent loads per (socket, node) sample
	// (default 512).
	Probes int
}

// Name implements Plugin.
func (MemLatency) Name() string { return "mem-latency" }

// Run implements Plugin.
func (p MemLatency) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	probes := p.Probes
	if probes <= 0 {
		probes = 512
	}
	reps := repCtx(t)
	lat := make([][]int64, t.NumSockets())
	th, err := m.NewThread(reps[0])
	if err != nil {
		return err
	}
	for s := range reps {
		if err := th.Pin(reps[s]); err != nil {
			return err
		}
		dvfsWait(m, th)
		lat[s] = make([]int64, t.NumNodes())
		for n := 0; n < t.NumNodes(); n++ {
			lat[s][n] = medianOfChunks(16, func(chunk int) int64 {
				return prober.MemRandomAccess(th, n, chunk)
			}, probes)
		}
	}
	spec.MemLat = lat
	return nil
}

// medianOfChunks splits total accesses into nChunks batches, computes the
// per-access average of each batch, and returns the median — robust against
// the occasional spurious spike (an interrupt or background process) that
// would otherwise inflate a plain mean.
func medianOfChunks(nChunks int, batch func(chunk int) int64, total int) int64 {
	per := total / nChunks
	if per < 1 {
		per = 1
	}
	avgs := make([]int64, 0, nChunks)
	for i := 0; i < nChunks; i++ {
		avgs = append(avgs, batch(per)/int64(per))
	}
	return stats.Median(avgs)
}

// MemBandwidth measures the achievable bandwidth from every socket to every
// node by streaming sequentially with an increasing number of cores until
// the aggregate stops improving (Section 4), and records the single-core
// streaming bandwidth used by the RR_SCALE policy.
type MemBandwidth struct{}

// Name implements Plugin.
func (MemBandwidth) Name() string { return "mem-bandwidth" }

// Run implements Plugin.
func (p MemBandwidth) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	bw := make([][]float64, t.NumSockets())
	for s, sock := range t.Sockets() {
		bw[s] = make([]float64, t.NumNodes())
		// One context per core of this socket, in core order.
		var ctxs []int
		for _, core := range t.SocketGetCores(sock) {
			ctxs = append(ctxs, core.Contexts[0].ID)
		}
		for n := 0; n < t.NumNodes(); n++ {
			best := 0.0
			for k := 1; k <= len(ctxs); k++ {
				cur := prober.StreamBandwidth(ctxs[:k], n)
				if cur <= best*1.005 { // saturated
					break
				}
				best = cur
			}
			bw[s][n] = best
		}
		if s == 0 && len(ctxs) > 0 {
			spec.StreamCoreBW = prober.StreamBandwidth(ctxs[:1], t.Sockets()[0].Local.ID)
		}
	}
	spec.MemBW = bw
	// Interconnect bandwidths fall out of the same measurements: the
	// bandwidth from socket A to socket B's local node is limited by the
	// link(s) between them — this fills the cross-socket graph's GB/s
	// labels (Figures 1b, 2b) and feeds the reduction-tree planner.
	nS := t.NumSockets()
	sbw := make([][]float64, nS)
	for a := 0; a < nS; a++ {
		sbw[a] = make([]float64, nS)
		for b := 0; b < nS; b++ {
			if a == b {
				continue
			}
			sbw[a][b] = bw[a][t.Socket(b).Local.ID]
		}
	}
	spec.SocketBW = sbw
	return nil
}

// Cache estimates the latency and size of the cache hierarchy by timing
// dependent loads over growing working sets and detecting the latency
// steps; it also "loads and includes the cache sizes from the operating
// system" (Section 4).
type Cache struct {
	// Loads per working-set sample (default 256).
	Loads int
}

// Name implements Plugin.
func (Cache) Name() string { return "cache" }

// Run implements Plugin.
func (p Cache) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	loads := p.Loads
	if loads <= 0 {
		loads = 256
	}
	th, err := m.NewThread(0)
	if err != nil {
		return err
	}
	dvfsWait(m, th)
	// Sweep working sets from 4 KB to 128 MB in x2 steps; record per-load
	// latency.
	type sample struct {
		ws  int64
		lat int64
	}
	var samples []sample
	for ws := int64(4 << 10); ws <= 128<<20; ws *= 2 {
		lat := medianOfChunks(16, func(chunk int) int64 {
			return prober.CacheWorkingSetLoads(th, ws, chunk)
		}, loads)
		samples = append(samples, sample{ws, lat})
	}
	// Detect the latency plateaus: a step is a >= 1.5x jump between
	// consecutive samples. The plateau latencies are the cache latencies;
	// the last working set before a jump estimates the level's size.
	var stepIdx []int
	for i := 1; i < len(samples); i++ {
		if float64(samples[i].lat) >= 1.5*float64(samples[i-1].lat) {
			stepIdx = append(stepIdx, i)
		}
	}
	ci := &topo.CacheInfo{}
	// Latencies: first plateau = L1; then after each step.
	ci.LatL1 = samples[0].lat
	if len(stepIdx) > 0 {
		ci.LatL2 = samples[stepIdx[0]].lat
		ci.SizeL1 = samples[stepIdx[0]-1].ws
	}
	if len(stepIdx) > 1 {
		ci.LatLLC = samples[stepIdx[1]].lat
		ci.SizeL2 = samples[stepIdx[1]-1].ws
	}
	if len(stepIdx) > 2 {
		ci.SizeLLC = samples[stepIdx[2]-1].ws
	}
	// The OS knows the exact sizes; prefer them when available.
	if l1, l2, llc := prober.CacheSizes(); l1 > 0 {
		ci.SizeL1, ci.SizeL2, ci.SizeLLC = l1, l2, llc
	}
	spec.Cache = ci
	return nil
}

// Power gathers RAPL-style power measurements (Section 4): idle power, full
// power, the power of a core's first and second hardware context, and the
// per-socket model used to estimate the power of a placement before
// executing it (Figure 7, POWER policy).
type Power struct{}

// Name implements Plugin.
func (Power) Name() string { return "power" }

// Run implements Plugin.
func (p Power) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.PowerProber)
	if !ok || !prober.PowerAvailable() {
		return ErrUnsupported{p.Name()}
	}
	core0 := t.Cores()[0]
	ctx0 := core0.Contexts[0].ID
	// Distinct-core context on the same socket.
	var ctx1 = -1
	for _, core := range t.Cores() {
		if core != core0 && core.Socket == core0.Socket {
			ctx1 = core.Contexts[0].ID
			break
		}
	}
	_, p1 := prober.PowerEstimate([]int{ctx0}, false)
	info := &topo.PowerInfo{Idle: prober.PowerIdle()}
	if ctx1 >= 0 {
		_, p12 := prober.PowerEstimate([]int{ctx0, ctx1}, false)
		info.PerFirstCtx = p12 - p1
		info.PerSocketBase = p1 - info.PerFirstCtx
	} else {
		info.PerSocketBase = p1
	}
	info.FirstCtx = info.PerFirstCtx
	if len(core0.Contexts) > 1 {
		sib := core0.Contexts[1].ID
		_, pSib := prober.PowerEstimate([]int{ctx0, sib}, false)
		info.PerExtraCtx = pSib - p1
		info.SecondCtx = info.PerExtraCtx
	}
	_, pDram := prober.PowerEstimate([]int{ctx0}, true)
	info.DRAM = pDram - p1
	var all []int
	for _, c := range t.Contexts() {
		all = append(all, c.ID)
	}
	sort.Ints(all)
	_, info.Full = prober.PowerEstimate(all, false)
	spec.Power = info
	return nil
}
