// Package plugins implements the four enrichment plugins of Section 4 of
// the MCTOP paper: memory latency, memory bandwidth, cache latency/size and
// power. Each plugin measures the machine through the optional prober
// interfaces of internal/machine and returns an enriched topology spec;
// "essentially, libmctop gives the best-case bandwidth and latency of a
// multi-core — these characteristics in the absence of contention."
//
// Plugins are pure functions from (machine, topology) to an updated spec:
// the topology itself is immutable, so enrichment rebuilds it.
package plugins

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Plugin measures one aspect of the machine and records it into the spec.
// Custom plugins can be added by implementing this interface ("developers
// can write their own plugins to further enrich MCTOP").
type Plugin interface {
	Name() string
	// Run measures m and mutates spec in place. t is the already inferred
	// base topology (for structure queries). Run returns an error only for
	// real failures; machines lacking the needed prober are skipped with
	// ErrUnsupported.
	Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error
}

// ErrUnsupported is returned by plugins whose prober the machine lacks
// (e.g. power on non-Intel platforms).
type ErrUnsupported struct{ PluginName string }

func (e ErrUnsupported) Error() string {
	return fmt.Sprintf("plugins: machine does not support %s measurements", e.PluginName)
}

// All returns the paper's four essential plugins in their natural order.
func All() []Plugin {
	return []Plugin{MemLatency{}, MemBandwidth{}, Cache{}, Power{}}
}

// The three measurement-heavy plugins run fork-per-probe under
// EnrichForked; Power stays sequential (its probes are closed-form model
// reads, not timed measurements).
var (
	_ ForkedPlugin = MemLatency{}
	_ ForkedPlugin = MemBandwidth{}
	_ ForkedPlugin = Cache{}
)

// enrich runs each plugin (All() if ps is nil) through run, skipping
// unsupported ones, and rebuilds the topology from the enriched spec — the
// loop both Enrich and EnrichForked share.
func enrich(t *topo.Topology, ps []Plugin, run func(Plugin, *topo.Spec) error) (*topo.Topology, error) {
	if ps == nil {
		ps = All()
	}
	spec := t.Spec()
	for _, p := range ps {
		err := run(p, &spec)
		if err == nil {
			continue
		}
		if _, skip := err.(ErrUnsupported); skip {
			continue
		}
		return nil, fmt.Errorf("plugins: %s: %w", p.Name(), err)
	}
	return topo.FromSpec(spec)
}

// Enrich runs the given plugins (All() if nil) over a topology and returns
// the enriched, rebuilt topology. Unsupported plugins are skipped. Probes
// run sequentially through the parent machine's single noise stream — the
// behavior description files were generated with.
func Enrich(m machine.Machine, t *topo.Topology, ps []Plugin) (*topo.Topology, error) {
	return enrich(t, ps, func(p Plugin, spec *topo.Spec) error {
		return p.Run(m, t, spec)
	})
}

// ForkedPlugin is the optional extension implemented by plugins whose
// probes can run on independent machine forks (the same pattern as
// MCTOP-ALG's parallel measurement phase: workers only decide when a probe
// runs, never what it observes).
type ForkedPlugin interface {
	Plugin
	// RunForked is Run with every probe measured on its own fork, fanned
	// out over the given worker count (<= 0 means GOMAXPROCS).
	RunForked(fk machine.Forker, m machine.Machine, t *topo.Topology, spec *topo.Spec, workers int) error
}

// Probe-stream tags: each forked probe observes the noise stream derived
// from (seed, tag+plugin, probe index). The base is far above any real
// context id, so probe streams never collide with MCTOP-ALG's per-pair
// measurement streams (which use ForkPair(x, y) with context ids).
const (
	probeTagMemLat = 1<<20 + iota
	probeTagMemBW
	probeTagCache
)

// EnrichForked is Enrich with the probes of fork-capable plugins measured
// on independent forks over a bounded worker pool. For a fixed machine seed
// the result is deterministic and byte-identical for every worker count —
// each probe's noise stream is a pure function of (seed, plugin, probe) and
// results merge in canonical probe order — but it differs from Enrich's
// (equally valid) measurements by the noise amplitude, because Enrich's
// probes share the parent machine's one sequential stream. Description
// files and golden fixtures are generated with Enrich; opt in to
// EnrichForked where enrichment latency matters more than byte-stability
// against those fixtures. Machines without machine.Forker fall back to
// Enrich, as do plugins without RunForked.
func EnrichForked(m machine.Machine, t *topo.Topology, ps []Plugin, workers int) (*topo.Topology, error) {
	fk, ok := m.(machine.Forker)
	if !ok {
		return Enrich(m, t, ps)
	}
	return enrich(t, ps, func(p Plugin, spec *topo.Spec) error {
		if fp, ok := p.(ForkedPlugin); ok {
			return fp.RunForked(fk, m, t, spec, workers)
		}
		return p.Run(m, t, spec)
	})
}

// forkProbes runs n independent probes over a bounded worker pool, probe i
// on the fork ForkPair(tag, i), and returns the results in probe order. Any
// probe error fails the whole run (and stops scheduling further probes).
func forkProbes[T any](fk machine.Forker, tag, n, workers int, probe func(m machine.Machine, i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]T, n)
	errs := make([]error, n)
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || failed.Load() {
					return
				}
				fm, err := fk.ForkPair(tag, i)
				if err == nil {
					out[i], err = probe(fm, i)
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// repCtx returns a representative hardware context of each socket (its
// first context).
func repCtx(t *topo.Topology) []int {
	reps := make([]int, t.NumSockets())
	for i, s := range t.Sockets() {
		reps[i] = s.Contexts[0].ID
	}
	return reps
}

// dvfsWait spins until consecutive calibrated loops take the same time —
// plugins need warm cores for exactly the same reason MCTOP-ALG does
// (Section 3.5).
func dvfsWait(m machine.Machine, t machine.Thread) {
	const unit = 1_000_000
	const maxIters = 64
	prev := m.SpinSolo(t, unit)
	stable := 0
	for i := 0; i < maxIters; i++ {
		cur := m.SpinSolo(t, unit)
		diff := cur - prev
		if diff < 0 {
			diff = -diff
		}
		if diff*100 <= prev {
			stable++
			if stable >= 2 {
				return
			}
		} else {
			stable = 0
		}
		prev = cur
	}
}

// MemLatency measures the load latency from every socket to every node
// using a randomly connected linked list of cache lines, "resulting in
// cache misses for almost every iteration" (Section 4).
type MemLatency struct {
	// Probes is the number of dependent loads per (socket, node) sample
	// (default 512).
	Probes int
}

// Name implements Plugin.
func (MemLatency) Name() string { return "mem-latency" }

// Run implements Plugin.
func (p MemLatency) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	probes := p.Probes
	if probes <= 0 {
		probes = 512
	}
	reps := repCtx(t)
	lat := make([][]int64, t.NumSockets())
	th, err := m.NewThread(reps[0])
	if err != nil {
		return err
	}
	for s := range reps {
		if err := th.Pin(reps[s]); err != nil {
			return err
		}
		dvfsWait(m, th)
		lat[s] = make([]int64, t.NumNodes())
		for n := 0; n < t.NumNodes(); n++ {
			lat[s][n] = medianOfChunks(16, func(chunk int) int64 {
				return prober.MemRandomAccess(th, n, chunk)
			}, probes)
		}
	}
	spec.MemLat = lat
	return nil
}

// RunForked implements ForkedPlugin: one fork per (socket, node) probe.
func (p MemLatency) RunForked(fk machine.Forker, m machine.Machine, t *topo.Topology, spec *topo.Spec, workers int) error {
	if _, ok := m.(machine.MemoryProber); !ok {
		return ErrUnsupported{p.Name()}
	}
	probes := p.Probes
	if probes <= 0 {
		probes = 512
	}
	reps := repCtx(t)
	nN := t.NumNodes()
	vals, err := forkProbes(fk, probeTagMemLat, len(reps)*nN, workers, func(fm machine.Machine, i int) (int64, error) {
		prober, ok := fm.(machine.MemoryProber)
		if !ok {
			return 0, fmt.Errorf("fork of %s does not support memory probes", m.Name())
		}
		s, n := i/nN, i%nN
		th, err := fm.NewThread(reps[s])
		if err != nil {
			return 0, err
		}
		dvfsWait(fm, th)
		return medianOfChunks(16, func(chunk int) int64 {
			return prober.MemRandomAccess(th, n, chunk)
		}, probes), nil
	})
	if err != nil {
		return err
	}
	lat := make([][]int64, len(reps))
	for s := range lat {
		lat[s] = vals[s*nN : (s+1)*nN]
	}
	spec.MemLat = lat
	return nil
}

// medianOfChunks splits total accesses into nChunks batches, computes the
// per-access average of each batch, and returns the median — robust against
// the occasional spurious spike (an interrupt or background process) that
// would otherwise inflate a plain mean.
func medianOfChunks(nChunks int, batch func(chunk int) int64, total int) int64 {
	per := total / nChunks
	if per < 1 {
		per = 1
	}
	avgs := make([]int64, 0, nChunks)
	for i := 0; i < nChunks; i++ {
		avgs = append(avgs, batch(per)/int64(per))
	}
	return stats.Median(avgs)
}

// MemBandwidth measures the achievable bandwidth from every socket to every
// node by streaming sequentially with an increasing number of cores until
// the aggregate stops improving (Section 4), and records the single-core
// streaming bandwidth used by the RR_SCALE policy.
type MemBandwidth struct{}

// Name implements Plugin.
func (MemBandwidth) Name() string { return "mem-bandwidth" }

// streamCtxs returns one context per core of the socket, in core order —
// the streaming team of the bandwidth saturation sweep.
func streamCtxs(t *topo.Topology, sock *topo.Socket) []int {
	var ctxs []int
	for _, core := range t.SocketGetCores(sock) {
		ctxs = append(ctxs, core.Contexts[0].ID)
	}
	return ctxs
}

// saturatedBW streams from node with an increasing number of cores until
// the aggregate stops improving (Section 4).
func saturatedBW(prober machine.MemoryProber, ctxs []int, node int) float64 {
	best := 0.0
	for k := 1; k <= len(ctxs); k++ {
		cur := prober.StreamBandwidth(ctxs[:k], node)
		if cur <= best*1.005 { // saturated
			break
		}
		best = cur
	}
	return best
}

// fillSocketBW derives the interconnect bandwidths: the bandwidth from
// socket A to socket B's local node is limited by the link(s) between
// them — this fills the cross-socket graph's GB/s labels (Figures 1b, 2b)
// and feeds the reduction-tree planner.
func fillSocketBW(t *topo.Topology, bw [][]float64, spec *topo.Spec) {
	nS := t.NumSockets()
	sbw := make([][]float64, nS)
	for a := 0; a < nS; a++ {
		sbw[a] = make([]float64, nS)
		for b := 0; b < nS; b++ {
			if a == b {
				continue
			}
			sbw[a][b] = bw[a][t.Socket(b).Local.ID]
		}
	}
	spec.SocketBW = sbw
}

// Run implements Plugin.
func (p MemBandwidth) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	bw := make([][]float64, t.NumSockets())
	for s, sock := range t.Sockets() {
		bw[s] = make([]float64, t.NumNodes())
		ctxs := streamCtxs(t, sock)
		for n := 0; n < t.NumNodes(); n++ {
			bw[s][n] = saturatedBW(prober, ctxs, n)
		}
		if s == 0 && len(ctxs) > 0 {
			spec.StreamCoreBW = prober.StreamBandwidth(ctxs[:1], t.Sockets()[0].Local.ID)
		}
	}
	spec.MemBW = bw
	fillSocketBW(t, bw, spec)
	return nil
}

// RunForked implements ForkedPlugin: one fork per (socket, node) sweep. The
// simulator's streaming model is noise-free, so forked and sequential
// bandwidth measurements agree exactly; forking still buys the wall-clock
// fan-out on large machines (Westmere: 8 sockets × 8 nodes).
func (p MemBandwidth) RunForked(fk machine.Forker, m machine.Machine, t *topo.Topology, spec *topo.Spec, workers int) error {
	if _, ok := m.(machine.MemoryProber); !ok {
		return ErrUnsupported{p.Name()}
	}
	nN := t.NumNodes()
	sockets := t.Sockets()
	local0 := sockets[0].Local.ID
	type bwProbe struct {
		best float64
		core float64 // single-core streaming BW, only from the (0, local0) probe
	}
	vals, err := forkProbes(fk, probeTagMemBW, len(sockets)*nN, workers, func(fm machine.Machine, i int) (bwProbe, error) {
		prober, ok := fm.(machine.MemoryProber)
		if !ok {
			return bwProbe{}, fmt.Errorf("fork of %s does not support memory probes", m.Name())
		}
		s, n := i/nN, i%nN
		ctxs := streamCtxs(t, sockets[s])
		out := bwProbe{best: saturatedBW(prober, ctxs, n)}
		if s == 0 && n == local0 && len(ctxs) > 0 {
			out.core = prober.StreamBandwidth(ctxs[:1], local0)
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	bw := make([][]float64, len(sockets))
	for s := range bw {
		bw[s] = make([]float64, nN)
		for n := 0; n < nN; n++ {
			bw[s][n] = vals[s*nN+n].best
		}
	}
	spec.StreamCoreBW = vals[local0].core
	spec.MemBW = bw
	fillSocketBW(t, bw, spec)
	return nil
}

// Cache estimates the latency and size of the cache hierarchy by timing
// dependent loads over growing working sets and detecting the latency
// steps; it also "loads and includes the cache sizes from the operating
// system" (Section 4).
type Cache struct {
	// Loads per working-set sample (default 256).
	Loads int
}

// Name implements Plugin.
func (Cache) Name() string { return "cache" }

// cacheSweepSizes returns the working-set sweep: 4 KB to 128 MB in x2
// steps.
func cacheSweepSizes() []int64 {
	var sizes []int64
	for ws := int64(4 << 10); ws <= 128<<20; ws *= 2 {
		sizes = append(sizes, ws)
	}
	return sizes
}

// cacheInfoFromSweep detects the latency plateaus of a working-set sweep: a
// step is a >= 1.5x jump between consecutive samples. The plateau latencies
// are the cache latencies; the last working set before a jump estimates the
// level's size. The OS knows the exact sizes; they are preferred when
// available.
func cacheInfoFromSweep(sizes, lats []int64, prober machine.MemoryProber) *topo.CacheInfo {
	var stepIdx []int
	for i := 1; i < len(lats); i++ {
		if float64(lats[i]) >= 1.5*float64(lats[i-1]) {
			stepIdx = append(stepIdx, i)
		}
	}
	ci := &topo.CacheInfo{}
	// Latencies: first plateau = L1; then after each step.
	ci.LatL1 = lats[0]
	if len(stepIdx) > 0 {
		ci.LatL2 = lats[stepIdx[0]]
		ci.SizeL1 = sizes[stepIdx[0]-1]
	}
	if len(stepIdx) > 1 {
		ci.LatLLC = lats[stepIdx[1]]
		ci.SizeL2 = sizes[stepIdx[1]-1]
	}
	if len(stepIdx) > 2 {
		ci.SizeLLC = sizes[stepIdx[2]-1]
	}
	if l1, l2, llc := prober.CacheSizes(); l1 > 0 {
		ci.SizeL1, ci.SizeL2, ci.SizeLLC = l1, l2, llc
	}
	return ci
}

// Run implements Plugin.
func (p Cache) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	loads := p.Loads
	if loads <= 0 {
		loads = 256
	}
	th, err := m.NewThread(0)
	if err != nil {
		return err
	}
	dvfsWait(m, th)
	sizes := cacheSweepSizes()
	lats := make([]int64, len(sizes))
	for i, ws := range sizes {
		ws := ws
		lats[i] = medianOfChunks(16, func(chunk int) int64 {
			return prober.CacheWorkingSetLoads(th, ws, chunk)
		}, loads)
	}
	spec.Cache = cacheInfoFromSweep(sizes, lats, prober)
	return nil
}

// RunForked implements ForkedPlugin: one fork per working-set size.
func (p Cache) RunForked(fk machine.Forker, m machine.Machine, t *topo.Topology, spec *topo.Spec, workers int) error {
	prober, ok := m.(machine.MemoryProber)
	if !ok {
		return ErrUnsupported{p.Name()}
	}
	loads := p.Loads
	if loads <= 0 {
		loads = 256
	}
	sizes := cacheSweepSizes()
	lats, err := forkProbes(fk, probeTagCache, len(sizes), workers, func(fm machine.Machine, i int) (int64, error) {
		fprober, ok := fm.(machine.MemoryProber)
		if !ok {
			return 0, fmt.Errorf("fork of %s does not support memory probes", m.Name())
		}
		th, err := fm.NewThread(0)
		if err != nil {
			return 0, err
		}
		dvfsWait(fm, th)
		return medianOfChunks(16, func(chunk int) int64 {
			return fprober.CacheWorkingSetLoads(th, sizes[i], chunk)
		}, loads), nil
	})
	if err != nil {
		return err
	}
	// Step detection runs on the merged sweep; the OS-reported sizes come
	// from the parent prober (they are static data, not a measurement).
	spec.Cache = cacheInfoFromSweep(sizes, lats, prober)
	return nil
}

// Power gathers RAPL-style power measurements (Section 4): idle power, full
// power, the power of a core's first and second hardware context, and the
// per-socket model used to estimate the power of a placement before
// executing it (Figure 7, POWER policy).
type Power struct{}

// Name implements Plugin.
func (Power) Name() string { return "power" }

// Run implements Plugin.
func (p Power) Run(m machine.Machine, t *topo.Topology, spec *topo.Spec) error {
	prober, ok := m.(machine.PowerProber)
	if !ok || !prober.PowerAvailable() {
		return ErrUnsupported{p.Name()}
	}
	core0 := t.Cores()[0]
	ctx0 := core0.Contexts[0].ID
	// Distinct-core context on the same socket.
	var ctx1 = -1
	for _, core := range t.Cores() {
		if core != core0 && core.Socket == core0.Socket {
			ctx1 = core.Contexts[0].ID
			break
		}
	}
	_, p1 := prober.PowerEstimate([]int{ctx0}, false)
	info := &topo.PowerInfo{Idle: prober.PowerIdle()}
	if ctx1 >= 0 {
		_, p12 := prober.PowerEstimate([]int{ctx0, ctx1}, false)
		info.PerFirstCtx = p12 - p1
		info.PerSocketBase = p1 - info.PerFirstCtx
	} else {
		info.PerSocketBase = p1
	}
	info.FirstCtx = info.PerFirstCtx
	if len(core0.Contexts) > 1 {
		sib := core0.Contexts[1].ID
		_, pSib := prober.PowerEstimate([]int{ctx0, sib}, false)
		info.PerExtraCtx = pSib - p1
		info.SecondCtx = info.PerExtraCtx
	}
	_, pDram := prober.PowerEstimate([]int{ctx0}, true)
	info.DRAM = pDram - p1
	var all []int
	for _, c := range t.Contexts() {
		all = append(all, c.ID)
	}
	sort.Ints(all)
	_, info.Full = prober.PowerEstimate(all, false)
	spec.Power = info
	return nil
}
