package plugins

// Tests for the fork-per-probe parallel enrichment phase: for a fixed
// machine seed the enriched spec must be byte-identical for every worker
// count and across runs (workers decide when a probe runs, never what it
// observes), noise-free plugins must agree exactly with the sequential
// path, and machines without Forker must fall back to it.

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/sim"
	"repro/internal/topo"
)

// inferBase builds the pre-enrichment topology every test enriches.
func inferBase(t *testing.T, platform string, seed uint64) (*machine.SimMachine, *topo.Topology) {
	t.Helper()
	p, err := sim.ByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.NewSim(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mctopalg.Infer(m, mctopalg.Options{Reps: 51})
	if err != nil {
		t.Fatal(err)
	}
	return m, res.Topology
}

func TestEnrichForkedParallelismIndependent(t *testing.T) {
	for _, platform := range []string{"Ivy", "Opteron"} {
		m, base := inferBase(t, platform, 42)
		var specs []topo.Spec
		for _, workers := range []int{1, 2, 8, 0 /* GOMAXPROCS */} {
			enriched, err := EnrichForked(m, base, nil, workers)
			if err != nil {
				t.Fatalf("%s: EnrichForked(workers=%d): %v", platform, workers, err)
			}
			specs = append(specs, enriched.Spec())
		}
		for i := 1; i < len(specs); i++ {
			if !reflect.DeepEqual(specs[0], specs[i]) {
				t.Fatalf("%s: enriched spec differs between worker counts (run %d)", platform, i)
			}
		}
	}
}

func TestEnrichForkedDeterministicAcrossMachines(t *testing.T) {
	// Two independent machines with the same seed must enrich identically:
	// probe streams are pure functions of (seed, plugin, probe), not of
	// whatever the parent machine measured before.
	m1, base1 := inferBase(t, "Ivy", 42)
	m2, base2 := inferBase(t, "Ivy", 42)
	e1, err := EnrichForked(m1, base1, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EnrichForked(m2, base2, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1.Spec(), e2.Spec()) {
		t.Fatal("same seed enriched differently across machines")
	}

	// A different seed must (with overwhelming probability) move at least
	// one noisy measurement — the probes really do observe seed-derived
	// streams.
	m3, base3 := inferBase(t, "Ivy", 43)
	e3, err := EnrichForked(m3, base3, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(e1.Spec().MemLat, e3.Spec().MemLat) && reflect.DeepEqual(e1.Spec().Cache, e3.Spec().Cache) {
		t.Log("warning: seeds 42 and 43 enriched identically (possible but unlikely)")
	}
}

// TestEnrichForkedNoiseFreePluginsMatchSequential: bandwidth and power
// probes are closed-form in the simulator, so the forked path must
// reproduce the sequential (golden-fixture) values exactly. The noisy
// probes (memory latency, cache sweep) are allowed to differ by the noise
// amplitude, but only by it.
func TestEnrichForkedNoiseFreePluginsMatchSequential(t *testing.T) {
	m, base := inferBase(t, "Ivy", 42)
	seq, err := Enrich(m, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := EnrichForked(m, base, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	ss, fs := seq.Spec(), forked.Spec()
	if !reflect.DeepEqual(ss.MemBW, fs.MemBW) {
		t.Errorf("MemBW differs: %v vs %v", ss.MemBW, fs.MemBW)
	}
	if !reflect.DeepEqual(ss.SocketBW, fs.SocketBW) {
		t.Errorf("SocketBW differs: %v vs %v", ss.SocketBW, fs.SocketBW)
	}
	if ss.StreamCoreBW != fs.StreamCoreBW {
		t.Errorf("StreamCoreBW differs: %v vs %v", ss.StreamCoreBW, fs.StreamCoreBW)
	}
	if !reflect.DeepEqual(ss.Power, fs.Power) {
		t.Errorf("Power differs: %+v vs %+v", ss.Power, fs.Power)
	}
	for s := range ss.MemLat {
		for n := range ss.MemLat[s] {
			d := ss.MemLat[s][n] - fs.MemLat[s][n]
			if d < -4 || d > 4 {
				t.Errorf("MemLat[%d][%d] differs beyond noise: %d vs %d", s, n, ss.MemLat[s][n], fs.MemLat[s][n])
			}
		}
	}
}

// nonForker exposes the simulator's measurement interfaces but not its
// ForkPair, exercising the sequential fallback. (Embedding *SimMachine
// directly would promote ForkPair and keep the machine a Forker.)
type nonForker struct {
	machine.Machine
	machine.MemoryProber
	machine.PowerProber
}

func TestEnrichForkedFallsBackWithoutForker(t *testing.T) {
	m, base := inferBase(t, "Ivy", 42)
	seq, err := Enrich(m, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enrichment consumes the parent's noise stream, so the fallback must
	// run on a machine in the same stream state as seq's.
	m2, base2 := inferBase(t, "Ivy", 42)
	fb, err := EnrichForked(nonForker{m2, m2, m2}, base2, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Spec(), fb.Spec()) {
		t.Fatal("non-Forker fallback differs from sequential Enrich")
	}
}
