// Package faultinject is a deterministic fault-injection layer for the
// serving stack's robustness tests: named fault points, each firing by a
// seeded pseudo-random draw (no wall-clock anywhere in the decision path),
// parameterized by probability, fire count, activation delay and injected
// latency. It is dependency-free — the packages that host fault points
// (internal/spool, internal/remote via the Transport below, the registry
// compute path) interpret an Outcome's Mode themselves, so this package
// never imports them.
//
// Everything is off by default: a nil *Set is valid and never fires, so
// production call sites pay one nil check. Tests and `mctopd -faults`
// build a Set from a spec string:
//
//	spool.write:mode=torn,prob=0.3;remote.fetch:mode=truncate,count=5
//
// and the chaos harness (`mctop-bench load -chaos` driving a daemon
// started with -faults) asserts the serving contract holds while the
// faults fire: correct bytes or honest 5xx, never corruption or hangs.
//
// Determinism: two Sets built with the same seed and spec make identical
// fire/skip decisions for identical Eval sequences. The only time-dependent
// behavior is the *injected* latency itself (Outcome.Delay), which sleeps
// through an injectable sleeper so tests can make it instant.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Canonical fault-point names. Points are plain strings — hosts may define
// their own — but the wired-in sites use these.
const (
	// SpoolWrite fires in the spool's write path. Modes: "enospc" and
	// "eperm" fail the write (the spool degrades to read-only until a
	// write succeeds), "torn" lands a half-written file under the final
	// spool name (simulating a crash mid-write on a filesystem without
	// atomic rename), "fail" is a generic write error.
	SpoolWrite = "spool.write"
	// SpoolRead fires in the spool's Get path. Mode "corrupt" makes the
	// entry decode as garbage — the file is quarantined and the Get
	// degrades to a miss.
	SpoolRead = "spool.read"
	// SpoolScan fires once per file during the startup scan. Mode
	// "corrupt" makes the file's header unreadable, quarantining it.
	SpoolScan = "spool.scan"
	// RemoteFetch fires in the Transport wrapping an edge's upstream HTTP
	// client. Modes: "refused" (dial error), "status" (synthesized HTTP
	// error, default 503, see Fault.Status), "truncate" (body cut off
	// mid-stream), "garbage" (body replaced with undecodable bytes),
	// "hang" (blocks until the request context fires), "latency" (delay
	// only, then forward).
	RemoteFetch = "remote.fetch"
	// RegistryInfer fires before a topology inference executes. Modes:
	// "fail" returns an error, "latency"/"slow" delays the compute.
	RegistryInfer = "registry.infer"
	// RegistryMap fires before a task-graph mapping computes. Modes:
	// "fail" returns an error, "latency"/"slow" delays the compute.
	RegistryMap = "registry.map"
)

// ErrInjected is the sentinel every injected failure wraps, so tests and
// logs can tell an injected fault from an organic one.
var ErrInjected = errors.New("injected fault")

// Fault is one rule at one point. The zero Mode means the point's default
// behavior (host-defined); Prob <= 0 means always fire.
type Fault struct {
	// Point names the injection site (see the constants above).
	Point string
	// Mode selects the behavior at the site (host-interpreted).
	Mode string
	// Prob is the per-evaluation fire probability in (0, 1]; <= 0 fires
	// on every evaluation.
	Prob float64
	// Count bounds the total fires of this rule (0 = unlimited).
	Count int
	// After skips the first N evaluations before the rule may fire.
	After int
	// Latency is injected before the behavior (Outcome.Delay).
	Latency time.Duration
	// Status is the HTTP status for Transport's "status" mode (0 = 503).
	Status int
}

// rule is a Fault plus its evaluation counters.
type rule struct {
	f     Fault
	evals int64
	fires int64
}

// Set is a collection of fault rules sharing one deterministic random
// stream. All methods are safe for concurrent use, and every method is a
// no-op on a nil receiver — callers hold a *Set that is nil when fault
// injection is off.
type Set struct {
	mu       sync.Mutex
	rng      uint64 // splitmix64 state
	rules    map[string][]*rule
	disabled bool
	// sleep implements Outcome.Delay; tests substitute an instant one.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Set firing the given faults, with all randomness derived
// from seed.
func New(seed uint64, faults ...Fault) *Set {
	s := &Set{
		rng:   seed*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15, // never zero
		rules: make(map[string][]*rule),
		sleep: sleepCtx,
	}
	for _, f := range faults {
		s.Add(f)
	}
	return s
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Add appends rules; rules at one point are evaluated in insertion order
// and the first that fires wins.
func (s *Set) Add(faults ...Fault) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range faults {
		if f.Point == "" {
			continue
		}
		s.rules[f.Point] = append(s.rules[f.Point], &rule{f: f})
	}
}

// Clear removes every rule at the point (counters included).
func (s *Set) Clear(point string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.rules, point)
}

// Reset removes every rule at every point, leaving the set armed but
// empty — the between-phases reset of a scripted chaos run.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = make(map[string][]*rule)
}

// SetEnabled turns the whole set on or off at runtime — how a chaos test
// flips between its fault phase and its recovery phase. Counters and the
// random stream are preserved.
func (s *Set) SetEnabled(on bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disabled = !on
}

// Enable is SetEnabled(true).
func (s *Set) Enable() { s.SetEnabled(true) }

// Disable is SetEnabled(false).
func (s *Set) Disable() { s.SetEnabled(false) }

// Outcome is one fired fault: what the site should do.
type Outcome struct {
	// Mode is the fired rule's behavior selector.
	Mode string
	// Latency is the delay to inject before the behavior.
	Latency time.Duration
	// Status is the HTTP status for "status"-mode transport faults.
	Status int

	set *Set
}

// Delay sleeps the outcome's injected latency, honoring ctx; it returns
// ctx.Err() if the context fires first.
func (o Outcome) Delay(ctx context.Context) error {
	if o.Latency <= 0 {
		return nil
	}
	sleep := sleepCtx
	if o.set != nil && o.set.sleep != nil {
		sleep = o.set.sleep
	}
	return sleep(ctx, o.Latency)
}

// Err renders the outcome as an injected-fault error for sites whose
// behavior is "fail with an error".
func (o Outcome) Err(point string) error {
	mode := o.Mode
	if mode == "" {
		mode = "fail"
	}
	return fmt.Errorf("%w: %s mode=%s", ErrInjected, point, mode)
}

// Eval evaluates the point's rules: the first rule that is active (past
// After, under Count) and wins its probability draw fires. A nil or
// disabled Set, or a point with no rules, never fires — the hot-path cost
// at a quiet point is one nil check and one map lookup.
func (s *Set) Eval(point string) (Outcome, bool) {
	if s == nil {
		return Outcome{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return Outcome{}, false
	}
	for _, r := range s.rules[point] {
		r.evals++
		if r.evals <= int64(r.f.After) {
			continue
		}
		if r.f.Count > 0 && r.fires >= int64(r.f.Count) {
			continue
		}
		if r.f.Prob > 0 && r.f.Prob < 1 && s.rand01() >= r.f.Prob {
			continue
		}
		r.fires++
		return Outcome{Mode: r.f.Mode, Latency: r.f.Latency, Status: r.f.Status, set: s}, true
	}
	return Outcome{}, false
}

// Fires reports how many times rules at the point have fired.
func (s *Set) Fires(point string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.rules[point] {
		n += r.fires
	}
	return n
}

// Points lists the configured points, sorted — what mctopd logs at boot.
func (s *Set) Points() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rules))
	for p := range s.rules {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// rand01 draws the next [0, 1) value from the seeded stream (splitmix64;
// s.mu held).
func (s *Set) rand01() float64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Parse builds a Set from a spec string — the `mctopd -faults` format:
// semicolon-separated rules, each `point:key=value,...` with keys mode,
// prob, count, after, latency (a Go duration) and status:
//
//	spool.write:mode=enospc,prob=0.3;remote.fetch:mode=hang,count=2
func Parse(seed uint64, spec string) (*Set, error) {
	faults, err := ParseFaults(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, faults...), nil
}

// ParseFaults parses the spec grammar without building a Set.
func ParseFaults(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, params, _ := strings.Cut(part, ":")
		f := Fault{Point: strings.TrimSpace(point)}
		if f.Point == "" {
			return nil, fmt.Errorf("faultinject: rule %q has no point name", part)
		}
		for _, kv := range strings.Split(params, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %s: bad parameter %q (want key=value)", f.Point, kv)
			}
			var err error
			switch k {
			case "mode":
				f.Mode = v
			case "prob":
				if f.Prob, err = strconv.ParseFloat(v, 64); err != nil || f.Prob < 0 || f.Prob > 1 {
					return nil, fmt.Errorf("faultinject: %s: bad prob %q (want 0..1)", f.Point, v)
				}
			case "count":
				if f.Count, err = strconv.Atoi(v); err != nil || f.Count < 0 {
					return nil, fmt.Errorf("faultinject: %s: bad count %q", f.Point, v)
				}
			case "after":
				if f.After, err = strconv.Atoi(v); err != nil || f.After < 0 {
					return nil, fmt.Errorf("faultinject: %s: bad after %q", f.Point, v)
				}
			case "latency":
				if f.Latency, err = time.ParseDuration(v); err != nil {
					return nil, fmt.Errorf("faultinject: %s: bad latency %q: %v", f.Point, v, err)
				}
			case "status":
				if f.Status, err = strconv.Atoi(v); err != nil || f.Status < 400 || f.Status > 599 {
					return nil, fmt.Errorf("faultinject: %s: bad status %q (want 400..599)", f.Point, v)
				}
			default:
				return nil, fmt.Errorf("faultinject: %s: unknown parameter %q", f.Point, k)
			}
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault spec")
	}
	return out, nil
}

// Transport wraps an http.RoundTripper with the named fault point — how
// the remote tier's upstream fetches are made to fail, stall, or return
// broken bodies without touching internal/remote itself. next may be nil
// (http.DefaultTransport).
func Transport(s *Set, point string, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{set: s, point: point, next: next}
}

type transport struct {
	set   *Set
	point string
	next  http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	o, ok := t.set.Eval(t.point)
	if !ok {
		return t.next.RoundTrip(req)
	}
	if err := o.Delay(req.Context()); err != nil {
		return nil, err
	}
	switch o.Mode {
	case "", "refused":
		return nil, fmt.Errorf("%w: %s: connection refused", ErrInjected, t.point)
	case "status":
		status := o.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return synthesized(req, status), nil
	case "hang":
		// Block until the request's own deadline/cancel fires: the shape
		// of an origin that accepted the connection and went silent.
		<-req.Context().Done()
		return nil, req.Context().Err()
	case "latency":
		return t.next.RoundTrip(req)
	case "truncate":
		resp, err := t.next.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			return resp, err
		}
		// Cut the body off mid-header: enough bytes to look like a real
		// response, not enough to decode.
		resp.Body = readCloser{io.LimitReader(resp.Body, 48), resp.Body}
		resp.ContentLength = -1
		return resp, nil
	case "garbage":
		resp, err := t.next.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			return resp, err
		}
		resp.Body.Close()
		resp.Body = io.NopCloser(strings.NewReader("\x00\x01garbage: not a description file\n"))
		resp.ContentLength = -1
		return resp, nil
	default:
		return nil, o.Err(t.point)
	}
}

// readCloser pairs a limited reader with the original body's Close.
type readCloser struct {
	io.Reader
	io.Closer
}

// synthesized builds an in-memory HTTP error response.
func synthesized(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("%s\n", http.StatusText(status))
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
