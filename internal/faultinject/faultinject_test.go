package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if _, ok := s.Eval(SpoolWrite); ok {
		t.Fatal("nil Set fired")
	}
	if n := s.Fires(SpoolWrite); n != 0 {
		t.Fatalf("nil Set Fires = %d", n)
	}
	s.Add(Fault{Point: SpoolWrite})
	s.Disable()
	s.Enable()
	if got := s.Points(); got != nil {
		t.Fatalf("nil Set Points = %v", got)
	}
}

func TestEvalDeterministicAcrossSets(t *testing.T) {
	mk := func() *Set { return New(42, Fault{Point: "p", Prob: 0.5}) }
	a, b := mk(), mk()
	var fired int
	for i := 0; i < 1000; i++ {
		_, okA := a.Eval("p")
		_, okB := b.Eval("p")
		if okA != okB {
			t.Fatalf("eval %d diverged: %v vs %v", i, okA, okB)
		}
		if okA {
			fired++
		}
	}
	if fired < 400 || fired > 600 {
		t.Fatalf("prob=0.5 fired %d/1000 times", fired)
	}
	// A different seed must produce a different decision sequence.
	c := New(43, Fault{Point: "p", Prob: 0.5})
	same := true
	a2 := mk()
	for i := 0; i < 64; i++ {
		_, okA := a2.Eval("p")
		_, okC := c.Eval("p")
		if okA != okC {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestCountAfterAndDisable(t *testing.T) {
	s := New(1, Fault{Point: "p", Mode: "x", Count: 2, After: 3})
	var fires []int
	for i := 0; i < 10; i++ {
		if _, ok := s.Eval("p"); ok {
			fires = append(fires, i)
		}
	}
	// Skips evals 0..2, then fires exactly twice.
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 4 {
		t.Fatalf("fires at %v, want [3 4]", fires)
	}
	if s.Fires("p") != 2 {
		t.Fatalf("Fires = %d, want 2", s.Fires("p"))
	}

	s = New(1, Fault{Point: "p"})
	s.Disable()
	if _, ok := s.Eval("p"); ok {
		t.Fatal("disabled set fired")
	}
	s.Enable()
	if _, ok := s.Eval("p"); !ok {
		t.Fatal("re-enabled set did not fire")
	}
}

func TestParseSpec(t *testing.T) {
	faults, err := ParseFaults("spool.write:mode=torn,prob=0.25,count=5,after=2,latency=10ms; remote.fetch:mode=status,status=502")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("parsed %d faults, want 2", len(faults))
	}
	f := faults[0]
	if f.Point != SpoolWrite || f.Mode != "torn" || f.Prob != 0.25 || f.Count != 5 || f.After != 2 || f.Latency != 10*time.Millisecond {
		t.Fatalf("bad first fault: %+v", f)
	}
	if faults[1].Point != RemoteFetch || faults[1].Status != 502 {
		t.Fatalf("bad second fault: %+v", faults[1])
	}

	for _, bad := range []string{
		"",
		":mode=x",
		"p:prob=2",
		"p:count=-1",
		"p:latency=banana",
		"p:status=200",
		"p:frobnicate=1",
		"p:mode",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}

	s, err := Parse(7, "registry.infer:mode=fail")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Points(); len(got) != 1 || got[0] != RegistryInfer {
		t.Fatalf("Points = %v", got)
	}
}

func TestOutcomeErrWrapsSentinel(t *testing.T) {
	s := New(1, Fault{Point: "p", Mode: "fail"})
	o, ok := s.Eval("p")
	if !ok {
		t.Fatal("did not fire")
	}
	if err := o.Err("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err does not wrap ErrInjected: %v", err)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	s := New(1, Fault{Point: "p", Latency: time.Hour})
	o, _ := s.Eval("p")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := o.Delay(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delay = %v, want context.Canceled", err)
	}
	// Injected instant sleeper makes a long latency free.
	s.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	o, _ = s.Eval("p")
	if err := o.Delay(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func transportTarget(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "#key topo|Ivy|1|r51\nreal body bytes that are long enough to be truncated meaningfully\n")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportModes(t *testing.T) {
	srv := transportTarget(t)
	do := func(s *Set, ctx context.Context) (*http.Response, error) {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		return Transport(s, RemoteFetch, nil).RoundTrip(req)
	}

	// No rules: pass-through.
	resp, err := do(New(1), context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := string(b)
	if !strings.HasPrefix(full, "#key ") {
		t.Fatalf("pass-through body %q", full)
	}

	// refused: synthetic dial error wrapping the sentinel.
	_, err = do(New(1, Fault{Point: RemoteFetch, Mode: "refused"}), context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("refused err = %v", err)
	}

	// status: synthesized 502 without touching the wire.
	resp, err = do(New(1, Fault{Point: RemoteFetch, Mode: "status", Status: 502}), context.Background())
	if err != nil || resp.StatusCode != 502 {
		t.Fatalf("status mode: %v %v", resp, err)
	}
	resp.Body.Close()

	// truncate: 200 with a short body.
	resp, err = do(New(1, Fault{Point: RemoteFetch, Mode: "truncate"}), context.Background())
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("truncate mode: %v %v", resp, err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(b) != 48 || full == string(b) {
		t.Fatalf("truncate body: %d bytes", len(b))
	}

	// garbage: 200 with undecodable bytes.
	resp, err = do(New(1, Fault{Point: RemoteFetch, Mode: "garbage"}), context.Background())
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("garbage mode: %v %v", resp, err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.HasPrefix(string(b), "#key ") {
		t.Fatal("garbage mode returned a decodable body")
	}

	// hang: blocks until the request context fires.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = do(New(1, Fault{Point: RemoteFetch, Mode: "hang"}), ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("hang returned before the context deadline")
	}

	// Count bounds injected faults; later requests pass through.
	s := New(1, Fault{Point: RemoteFetch, Mode: "refused", Count: 1})
	if _, err := do(s, context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("first request not refused: %v", err)
	}
	resp, err = do(s, context.Background())
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("second request did not pass through: %v %v", resp, err)
	}
	resp.Body.Close()
}
