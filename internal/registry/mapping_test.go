package registry

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mctopalg"
	"repro/internal/mctoperr"
	"repro/internal/taskmap"
	"repro/internal/topo"
)

func TestParseMapKeyRoundTrip(t *testing.T) {
	opts := []mctopalg.Options{{}, mctopalg.DefaultOptions(), {Reps: 201, SkipMemoryProbe: true}}
	dags := []*graph.TaskDAG{
		graph.GenTaskDAG(graph.DAGParams{}, 1),
		graph.GenTaskDAG(graph.DAGParams{Layers: 5, Width: 4}, 77),
		{Nodes: []graph.TaskNode{{ID: 0, Work: 5}}}, // single node, zero edges
	}
	for _, opt := range opts {
		for _, d := range dags {
			for _, refine := range []int{0, 2000} {
				key := MapKey("Ivy", 42, opt, d, refine)
				tk, hash, nodes, edges, ref, err := ParseMapKey(key)
				if err != nil {
					t.Fatalf("ParseMapKey(%q): %v", key, err)
				}
				if tk != TopoKey("Ivy", 42, opt) || hash != d.Hash() ||
					nodes != len(d.Nodes) || edges != len(d.Edges) || ref != refine {
					t.Fatalf("ParseMapKey(%q) = (%q, %x, %d, %d, %d)", key, tk, hash, nodes, edges, ref)
				}
				if got := mapKey(tk, hash, nodes, edges, ref); got != key {
					t.Fatalf("re-serialized key %q != original %q", got, key)
				}
			}
		}
	}
}

func TestParseMapKeyRejectsMalformed(t *testing.T) {
	d := graph.GenTaskDAG(graph.DAGParams{}, 1)
	good := MapKey("Ivy", 42, mctopalg.Options{Reps: 201}, d, 100)
	tk := TopoKey("Ivy", 42, mctopalg.Options{Reps: 201})
	bad := []string{
		"",
		tk,                                 // a topology key is not a mapping key
		"map|" + tk,                        // nothing after the topology key
		"map|" + tk + "|deadbeef|n4|e2|r0", // short hash
		"map|" + tk + "|DEADBEEFDEADBEEF|n4|e2|r0",  // uppercase hash
		"map|" + tk + "|zzzzzzzzzzzzzzzz|n4|e2|r0",  // non-hex hash
		"map|" + tk + "|0123456789abcdef|e2|r0",     // missing nodes field
		"map|" + tk + "|0123456789abcdef|n0|e2|r0",  // zero nodes
		"map|" + tk + "|0123456789abcdef|n4|e2|r-1", // negative refine
		"map|" + tk + "|0123456789abcdef|n04|e2|r0", // non-canonical nodes
		"map|" + tk + "|0123456789abcdef|n4|e+2|r0", // signed edges
		"map|not-a-topo-key|0123456789abcdef|n4|e2|r0",
		good + "|x",
		good + "x", // junk in the refine field
		strings.Replace(good, "|n", "|N", 1),
	}
	for _, key := range bad {
		_, _, _, _, _, err := ParseMapKey(key)
		if err == nil {
			t.Fatalf("ParseMapKey(%q) accepted a malformed key", key)
		}
		// The daemon maps mapping-key failures to 400.
		if !errors.Is(err, mctoperr.ErrInvalidRequest) {
			t.Fatalf("ParseMapKey(%q) error %v does not wrap ErrInvalidRequest", key, err)
		}
	}
}

// mapTestRegistry builds a registry over the shared stub topology and a
// counting MapFunc, so mapping cache behaviour is testable without
// repeated inference.
func mapTestRegistry(t *testing.T, computes *atomic.Int64) *Registry {
	t.Helper()
	return New(Options{
		Infer: func(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			return fakeTopo(), nil
		},
		MapFn: func(ctx context.Context, tp *topo.Topology, d *graph.TaskDAG, opt taskmap.Options) (*taskmap.Mapping, error) {
			computes.Add(1)
			return taskmap.Map(ctx, tp, d, opt)
		},
	})
}

func TestMapDAGCachedAndSingleflight(t *testing.T) {
	var computes atomic.Int64
	r := mapTestRegistry(t, &computes)
	d := graph.GenTaskDAG(graph.DAGParams{}, 3)

	m1, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, d, 100)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d mappings for two identical requests", computes.Load())
	}
	if m1 != m2 {
		t.Fatal("second request did not return the cached mapping")
	}
	// A renamed but structurally identical DAG shares the entry.
	renamed := &graph.TaskDAG{Name: "other", Nodes: d.Nodes, Edges: d.Edges}
	if _, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, renamed, 100); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatal("renamed identical DAG missed the cache")
	}
	// A different refine budget is a different entry.
	if _, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, d, 200); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Fatalf("refine budget change should recompute, computes=%d", computes.Load())
	}
	st := r.Stats()
	if st.Mappings != 2 {
		t.Fatalf("Stats.Mappings = %d, want 2", st.Mappings)
	}
	if len(st.Tiers) == 0 || st.Tiers[0].Mappings != 2 {
		t.Fatalf("tier mapping residency = %+v", st.Tiers)
	}
	if ks, ok := st.Tiers[0].Kinds[KindMapping.String()]; !ok || ks.Entries != 2 {
		t.Fatalf("per-kind mapping stats = %+v", st.Tiers[0].Kinds)
	}
}

func TestMapDAGRejectsInvalid(t *testing.T) {
	var computes atomic.Int64
	r := mapTestRegistry(t, &computes)
	cases := []struct {
		name string
		d    *graph.TaskDAG
		ref  int
	}{
		{"nil DAG", nil, 0},
		{"cyclic", &graph.TaskDAG{
			Nodes: []graph.TaskNode{{ID: 0, Work: 1}, {ID: 1, Work: 1}},
			Edges: []graph.TaskEdge{{From: 0, To: 1, Volume: 1}, {From: 1, To: 0, Volume: 1}},
		}, 0},
		{"negative refine", graph.GenTaskDAG(graph.DAGParams{}, 1), -1},
	}
	for _, c := range cases {
		_, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, c.d, c.ref)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !errors.Is(err, mctoperr.ErrInvalidRequest) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidRequest", c.name, err)
		}
	}
	if computes.Load() != 0 {
		t.Fatal("invalid requests must not reach the map function")
	}
}

func TestMapDAGObserverAndErrors(t *testing.T) {
	var observed atomic.Int64
	mapErr := errors.New("mapper exploded")
	r := New(Options{
		Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
			return fakeTopo(), nil
		},
		MapFn: func(context.Context, *topo.Topology, *graph.TaskDAG, taskmap.Options) (*taskmap.Mapping, error) {
			return nil, mapErr
		},
	})
	r.Instrument(&Observer{OnMapping: func(d time.Duration, err error) {
		observed.Add(1)
		if !errors.Is(err, mapErr) {
			t.Errorf("observer saw err %v, want mapErr", err)
		}
	}})
	d := graph.GenTaskDAG(graph.DAGParams{}, 5)
	if _, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, d, 0); !errors.Is(err, mapErr) {
		t.Fatalf("err = %v, want mapErr", err)
	}
	if observed.Load() != 1 {
		t.Fatalf("observer invoked %d times, want 1", observed.Load())
	}
	// Errors are not cached: a second call computes (and fails) again.
	if _, err := r.MapDAG("Ivy", 42, mctopalg.Options{}, d, 0); !errors.Is(err, mapErr) {
		t.Fatalf("err = %v, want mapErr", err)
	}
	if observed.Load() != 2 {
		t.Fatalf("failed mapping was cached (observer invoked %d times)", observed.Load())
	}
	if st := r.Stats(); st.Mappings != 2 {
		t.Fatalf("Stats.Mappings = %d, want 2 attempted computes", st.Mappings)
	}
}
