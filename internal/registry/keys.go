package registry

// Key parsing — the inverse of topoKey/placeKey, for the fleet tier.
//
// An edge daemon's remote store tier only holds a registry key when it
// misses; the origin it fetches from must turn that key back into the
// (platform, seed, options) or (topology key, policy, threads) request a
// registry can answer. Both parsers are strict: a key that does not
// re-serialize to the exact input is rejected, so a malformed or
// differently-normalized key can never alias another configuration's
// cache entry.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mctopalg"
)

// ParseTopoKey inverts TopoKey: it recovers the platform, seed and
// normalized inference options a topology key encodes. The returned
// options always re-serialize to the exact input key (round-trip checked);
// any other key is an error.
func ParseTopoKey(key string) (platform string, seed uint64, opt mctopalg.Options, err error) {
	fail := func(format string, args ...any) (string, uint64, mctopalg.Options, error) {
		return "", 0, mctopalg.Options{}, fmt.Errorf("registry: bad topology key %q: %s", key, fmt.Sprintf(format, args...))
	}
	rest, ok := strings.CutPrefix(key, "topo|")
	if !ok {
		return fail("missing topo| prefix")
	}
	// The option block is the last |-field and the seed the one before it;
	// everything in between is the platform (which therefore may itself
	// contain '|', unlike the option block).
	i := strings.LastIndexByte(rest, '|')
	if i < 0 {
		return fail("missing option block")
	}
	optBlock := rest[i+1:]
	j := strings.LastIndexByte(rest[:i], '|')
	if j < 0 {
		return fail("missing seed")
	}
	platform = rest[:j]
	if platform == "" {
		return fail("empty platform")
	}
	seed, perr := strconv.ParseUint(rest[j+1:i], 10, 64)
	if perr != nil {
		return fail("bad seed %q", rest[j+1:i])
	}

	// The option block is a fixed-order, prefix-tagged field list (see
	// topoKey). Parse positionally.
	fields := strings.Split(optBlock, ",")
	if len(fields) != 14 {
		return fail("%d option fields, want 14", len(fields))
	}
	take := func(idx int, tag string) (string, bool) {
		v, ok := strings.CutPrefix(fields[idx], tag)
		return v, ok && v != ""
	}
	parse := []struct {
		idx  int
		tag  string
		into func(string) error
	}{
		{0, "r", func(v string) error { n, e := strconv.Atoi(v); opt.Reps = n; return e }},
		{1, "s", func(v string) error { f, e := strconv.ParseFloat(v, 64); opt.StdevThreshold = f; return e }},
		{2, "sm", func(v string) error { f, e := strconv.ParseFloat(v, 64); opt.StdevThresholdMax = f; return e }},
		{3, "mr", func(v string) error { n, e := strconv.Atoi(v); opt.MaxRetries = n; return e }},
		{4, "cg", func(v string) error { f, e := strconv.ParseFloat(v, 64); opt.Cluster.RelGap = f; return e }},
		{5, "ca", func(v string) error { n, e := strconv.ParseInt(v, 10, 64); opt.Cluster.AbsGap = n; return e }},
		{6, "cm", func(v string) error { n, e := strconv.Atoi(v); opt.Cluster.MaxClusters = n; return e }},
		{7, "su", func(v string) error { n, e := strconv.ParseInt(v, 10, 64); opt.SpinUnit = n; return e }},
		{8, "smp", func(v string) error { b, e := strconv.ParseBool(v); opt.SkipMemoryProbe = b; return e }},
		{9, "fe", func(v string) error { b, e := strconv.ParseBool(v); opt.ForkedEnrich = b; return e }},
		{10, "se", func(v string) error { b, e := strconv.ParseBool(v); opt.Sampling.Enabled = b; return e }},
		{11, "sp", func(v string) error { n, e := strconv.Atoi(v); opt.Sampling.Pilots = n; return e }},
		{12, "smc", func(v string) error { n, e := strconv.Atoi(v); opt.Sampling.MinContexts = n; return e }},
		{13, "sv", func(v string) error { n, e := strconv.Atoi(v); opt.Sampling.VerifyPerBlock = n; return e }},
	}
	for _, p := range parse {
		v, ok := take(p.idx, p.tag)
		if !ok {
			return fail("option field %d is not %s-tagged", p.idx, p.tag)
		}
		if err := p.into(v); err != nil {
			return fail("option field %s%s: %v", p.tag, v, err)
		}
	}
	// Strictness: only keys this registry version would itself emit
	// resolve. Anything else — trailing junk, non-canonical float
	// rendering, an un-normalized option — must not alias a cache entry.
	if topoKey(platform, seed, opt) != key {
		return fail("does not round-trip")
	}
	return platform, seed, opt, nil
}

// ParsePlaceKey inverts placeKey: it splits a placement key into the
// embedded topology key, the policy name and the thread count. The
// topology key is validated (ParseTopoKey) so the whole placement key
// round-trips; a policy name containing '|' cannot be recovered and is
// rejected by that check.
func ParsePlaceKey(key string) (topoK string, policy string, nThreads int, err error) {
	fail := func(format string, args ...any) (string, string, int, error) {
		return "", "", 0, fmt.Errorf("registry: bad placement key %q: %s", key, fmt.Sprintf(format, args...))
	}
	rest, ok := strings.CutPrefix(key, "place|")
	if !ok {
		return fail("missing place| prefix")
	}
	i := strings.LastIndexByte(rest, '|')
	if i < 0 {
		return fail("missing thread count")
	}
	nThreads, perr := strconv.Atoi(rest[i+1:])
	if perr != nil || nThreads < 0 {
		return fail("bad thread count %q", rest[i+1:])
	}
	j := strings.LastIndexByte(rest[:i], '|')
	if j < 0 {
		return fail("missing policy")
	}
	topoK, policy = rest[:j], rest[j+1:i]
	if policy == "" {
		return fail("empty policy")
	}
	if _, _, _, err := ParseTopoKey(topoK); err != nil {
		return fail("embedded topology key: %v", err)
	}
	// The same strictness as ParseTopoKey: the parsed fields must
	// re-serialize to the exact input, so a non-canonical rendering (a
	// zero-padded or signed thread count) cannot alias the canonical
	// entry's key.
	if "place|"+topoK+"|"+policy+"|"+strconv.Itoa(nThreads) != key {
		return fail("does not round-trip")
	}
	return topoK, policy, nThreads, nil
}
