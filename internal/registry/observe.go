package registry

// Request-scoped and registry-scoped observability hooks. The registry is
// the layer that knows which tier answered a lookup and how long a compute
// ran; servers (mctopd) attach here to label request logs and feed
// duration histograms without the registry importing any metrics package.

import (
	"context"
	"time"
)

// Served is the per-request attribution record a server threads through
// the context: the registry fills Tier with the name of the store tier
// that answered ("lru", "spool", "remote", …), "computed" when the value
// was computed by this call, or "coalesced" when the call joined another
// caller's in-flight computation. It is written by the request's own
// goroutine during the lookup; read it only after the registry call
// returns.
type Served struct {
	Tier string
}

type servedCtxKey struct{}

// ContextWithServed derives a context carrying a fresh Served record for
// the registry to fill.
func ContextWithServed(ctx context.Context) (context.Context, *Served) {
	sv := &Served{}
	return context.WithValue(ctx, servedCtxKey{}, sv), sv
}

// servedFrom returns the context's Served record, if any.
func servedFrom(ctx context.Context) *Served {
	sv, _ := ctx.Value(servedCtxKey{}).(*Served)
	return sv
}

func setServed(ctx context.Context, tier string) {
	if sv := servedFrom(ctx); sv != nil {
		sv.Tier = tier
	}
}

// Observer receives compute-duration callbacks: OnInference after every
// executed topology inference, OnPlacement after every computed placement,
// OnMapping after every computed task-graph mapping (cache hits invoke
// none). Callbacks run on the computing goroutine and must be cheap and
// concurrency-safe — a histogram observation, not a syscall.
type Observer struct {
	OnInference func(d time.Duration, err error)
	OnPlacement func(d time.Duration, err error)
	OnMapping   func(d time.Duration, err error)
}

// Instrument installs (or replaces) the registry's observer. Safe to call
// while the registry serves; a nil observer detaches.
func (r *Registry) Instrument(o *Observer) {
	r.observer.Store(o)
}

func (r *Registry) observeInference(start time.Time, err error) {
	if o := r.observer.Load(); o != nil && o.OnInference != nil {
		o.OnInference(time.Since(start), err)
	}
}

func (r *Registry) observePlacement(start time.Time, err error) {
	if o := r.observer.Load(); o != nil && o.OnPlacement != nil {
		o.OnPlacement(time.Since(start), err)
	}
}

func (r *Registry) observeMapping(start time.Time, err error) {
	if o := r.observer.Load(); o != nil && o.OnMapping != nil {
		o.OnMapping(time.Since(start), err)
	}
}
