package registry

import (
	"context"
	"sync/atomic"
)

// The tiered topology store. The registry's cache sits behind the Store
// interface so deployments can compose storage tiers: the default is the
// in-memory sharded LRU (lru.go); a daemon that must survive restarts
// chains it over internal/spool's description-file tier (NewTiered), the
// paper's "created once, then used to load the topology" artifact turned
// into a cache level. The registry itself only sees Get/Put — singleflight,
// counters and the compute semaphore stay above the store.

// Kind tags what a cache entry holds, so persistent tiers can pick a
// serialization per entry kind (topologies become .mctop description
// files, placements a compact sidecar) without inspecting values.
type Kind int

const (
	// KindTopology entries hold a *topo.Topology.
	KindTopology Kind = iota
	// KindPlacement entries hold a *place.Placement.
	KindPlacement
	// KindMapping entries hold a *taskmap.Mapping.
	KindMapping

	// numKinds sizes per-kind counter arrays.
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindTopology:
		return "topology"
	case KindPlacement:
		return "placement"
	case KindMapping:
		return "mapping"
	}
	return "unknown"
}

// Store is one cache tier of the registry. Implementations must be safe
// for concurrent use; Get and Put run on the serving hot path. A Store
// never computes — a miss is just (nil, false) — and never fails: a
// persistent tier that cannot read or write an entry treats it as a miss
// (logging the reason) so a broken disk degrades to re-inference, never to
// serving errors.
type Store interface {
	// Get returns the cached value for key, if present.
	Get(kind Kind, key string) (any, bool)
	// Put inserts or replaces the value for key.
	Put(kind Kind, key string, val any)
	// Len returns the number of entries resident in this store.
	Len() int
	// Purge drops every entry (for persistent tiers: from disk too).
	Purge()
	// Stats snapshots the store's counters, one element per tier.
	Stats() []StoreStats
}

// StoreStats is one tier's counter snapshot.
type StoreStats struct {
	// Tier names the store implementation ("lru", "spool").
	Tier string `json:"tier"`
	// Hits / Misses count Get outcomes on this tier.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts write-throughs (including tier promotions).
	Puts int64 `json:"puts"`
	// Evictions counts entries dropped by a capacity bound.
	Evictions int64 `json:"evictions"`
	// Errors counts entries a persistent tier failed to read or write
	// (each one logged and degraded to a miss or dropped write).
	Errors int64 `json:"errors"`
	// Quarantined counts undecodable files a persistent tier moved aside
	// (the spool's quarantine/ directory) so they stop being rescanned
	// every restart. A nonzero value means on-disk corruption happened.
	Quarantined int64 `json:"quarantined,omitempty"`
	// Entries is the current resident entry count; Topologies, Placements
	// and Mappings break it down per entry kind.
	Entries    int `json:"entries"`
	Topologies int `json:"topologies"`
	Placements int `json:"placements"`
	Mappings   int `json:"mappings"`
	// Kinds breaks the Get/eviction counters down per entry kind
	// ("topology", "placement", "mapping") — what per-kind hit-ratio
	// dashboards consume via mctopd's /metrics.
	Kinds map[string]KindStats `json:"kinds,omitempty"`
}

// KindStats is one entry kind's share of a tier's counters.
type KindStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// kindCounters is the shared per-kind atomic counter block store tiers
// embed: one slot per Kind, observed on the Get path with a single atomic
// add each.
type kindCounters struct {
	hits      [numKinds]atomic.Int64
	misses    [numKinds]atomic.Int64
	evictions [numKinds]atomic.Int64
}

func kindIndex(k Kind) int {
	if k >= 0 && k < numKinds {
		return int(k)
	}
	return 0
}

func (c *kindCounters) hit(k Kind)   { c.hits[kindIndex(k)].Add(1) }
func (c *kindCounters) miss(k Kind)  { c.misses[kindIndex(k)].Add(1) }
func (c *kindCounters) evict(k Kind) { c.evictions[kindIndex(k)].Add(1) }

// snapshot fills StoreStats.Kinds (entries counts are the caller's, since
// only the store knows its residency).
func (c *kindCounters) snapshot(topoEntries, placeEntries, mapEntries int) map[string]KindStats {
	entries := [numKinds]int{topoEntries, placeEntries, mapEntries}
	out := make(map[string]KindStats, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k.String()] = KindStats{
			Hits:      c.hits[k].Load(),
			Misses:    c.misses[k].Load(),
			Evictions: c.evictions[k].Load(),
			Entries:   entries[k],
		}
	}
	return out
}

// TierNamer is the optional Store extension naming the tier ("lru",
// "spool", "remote") — what served-by-tier request logs and metrics label
// their samples with.
type TierNamer interface {
	TierName() string
}

// tierNameOf falls back to "store" for tiers that do not name themselves.
func tierNameOf(s Store) string {
	if n, ok := s.(TierNamer); ok {
		return n.TierName()
	}
	return "store"
}

// TierGetter is the optional Store extension reporting which tier served a
// hit. Tiered implements it; the registry prefers it when present so each
// request can be attributed (request logs, served-by-tier counters).
type TierGetter interface {
	GetWithTier(kind Kind, key string) (val any, tier string, ok bool)
}

// CtxGetter is the optional Store extension for tiers that thread the
// request context through their reads — today that means tracing spans
// (spool decodes, remote fetches); the context never carries cancellation
// semantics a plain Get would lack.
type CtxGetter interface {
	GetContext(ctx context.Context, kind Kind, key string) (any, bool)
}

// CtxTierGetter is TierGetter with the request context threaded through.
// The registry prefers it over TierGetter when present.
type CtxTierGetter interface {
	GetWithTierContext(ctx context.Context, kind Kind, key string) (val any, tier string, ok bool)
}

// Flusher is the optional Store extension for tiers with buffered writes:
// Flush blocks until every accepted Put is durable. Registry.Flush and the
// daemon's graceful shutdown call it through the chain.
type Flusher interface {
	Flush() error
}

// Closer is the optional Store extension for tiers holding resources
// (background writers, directory handles). Close implies Flush.
type Closer interface {
	Close() error
}

// Tiered chains stores into one read-through/write-through Store: Get
// consults tiers in order and promotes a lower-tier hit into every tier
// above it (a cold LRU miss that hits the disk spool decodes once and is
// then served from memory); Put writes through to every tier.
type Tiered struct {
	tiers []Store
}

// NewTiered composes tiers, fastest first. Nil tiers are skipped; at least
// one non-nil tier is required.
func NewTiered(tiers ...Store) *Tiered {
	t := &Tiered{}
	for _, s := range tiers {
		if s != nil {
			t.tiers = append(t.tiers, s)
		}
	}
	if len(t.tiers) == 0 {
		panic("registry: NewTiered needs at least one tier")
	}
	return t
}

// Get implements Store: read-through with promotion.
func (t *Tiered) Get(kind Kind, key string) (any, bool) {
	v, _, ok := t.GetWithTier(kind, key)
	return v, ok
}

// GetWithTier implements TierGetter: Get plus the name of the tier that
// served the hit.
func (t *Tiered) GetWithTier(kind Kind, key string) (any, string, bool) {
	return t.GetWithTierContext(context.Background(), kind, key)
}

// GetWithTierContext implements CtxTierGetter: the read-through walk with
// the request context handed to tiers that accept one, so a traced request
// attributes its time to the tier that actually did the work.
func (t *Tiered) GetWithTierContext(ctx context.Context, kind Kind, key string) (any, string, bool) {
	for i, s := range t.tiers {
		v, ok := tierGet(ctx, s, kind, key)
		if ok {
			for j := 0; j < i; j++ {
				t.tiers[j].Put(kind, key, v)
			}
			return v, tierNameOf(s), true
		}
	}
	return nil, "", false
}

// tierGet reads one tier, through its context-aware extension when it has
// one.
func tierGet(ctx context.Context, s Store, kind Kind, key string) (any, bool) {
	if cg, ok := s.(CtxGetter); ok {
		return cg.GetContext(ctx, kind, key)
	}
	return s.Get(kind, key)
}

// Put implements Store: write-through to every tier.
func (t *Tiered) Put(kind Kind, key string, val any) {
	for _, s := range t.tiers {
		s.Put(kind, key, val)
	}
}

// Len implements Store: the entry count of the fastest tier (what is
// servable without tier promotion); per-tier counts are in Stats.
func (t *Tiered) Len() int { return t.tiers[0].Len() }

// Purge implements Store: purges every tier — including persistent ones,
// whose files are removed. Callers that only want to drop the memory tier
// purge it directly.
func (t *Tiered) Purge() {
	for _, s := range t.tiers {
		s.Purge()
	}
}

// Stats implements Store: the concatenated per-tier snapshots, fastest
// tier first.
func (t *Tiered) Stats() []StoreStats {
	out := make([]StoreStats, 0, len(t.tiers))
	for _, s := range t.tiers {
		out = append(out, s.Stats()...)
	}
	return out
}

// Flush implements Flusher across the chain.
func (t *Tiered) Flush() error {
	var first error
	for _, s := range t.tiers {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close implements Closer across the chain.
func (t *Tiered) Close() error {
	var first error
	for _, s := range t.tiers {
		if c, ok := s.(Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
