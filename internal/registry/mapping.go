package registry

// Task-graph mappings — the third cached kind. A mapping request is
// (topology inputs, DAG, refine budget); the DAG itself is identified in
// the cache key by its canonical hash plus node/edge counts, so two
// requests for structurally identical DAGs — whatever their names or edge
// listing order — share one entry, exactly like placements share entries
// across batch and single-request traffic. Mapping computes are ungated
// by the compute semaphore for the same reason placements are: a mapping
// miss computes its topology through LookupTopologyContext, and gating
// both levels would deadlock the nested inference.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/mctopalg"
	"repro/internal/mctoperr"
	"repro/internal/taskmap"
	"repro/internal/topo"
	"repro/internal/trace"
)

// MapFunc computes a task-graph mapping on a cache miss. The default is
// taskmap.Map; tests substitute counting or failing implementations, and
// the daemon wraps it for fault injection (the registry.map point).
type MapFunc func(ctx context.Context, t *topo.Topology, d *graph.TaskDAG, opt taskmap.Options) (*taskmap.Mapping, error)

// mapKey extends a topology key with the DAG identity (canonical hash,
// node and edge counts) and the refine budget. Append-built like topoKey:
// one is assembled per mapping request on the serving hot path.
func mapKey(tk string, hash uint64, nodes, edges, refine int) string {
	b := make([]byte, 0, len(tk)+48)
	b = append(b, "map|"...)
	b = append(b, tk...)
	b = append(b, '|')
	b = appendHash16(b, hash)
	b = append(b, "|n"...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, "|e"...)
	b = strconv.AppendInt(b, int64(edges), 10)
	b = append(b, "|r"...)
	b = strconv.AppendInt(b, int64(refine), 10)
	return string(b)
}

// appendHash16 renders a DAG hash as fixed-width lowercase hex — fixed
// width so keys are visually alignable and the parser is strict.
func appendHash16(b []byte, h uint64) []byte {
	const hex = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b = append(b, hex[(h>>(uint(i)*4))&0xf])
	}
	return b
}

// MapKey is the registry's cache key for a task-graph mapping — exported
// for tools that install or look up mapping sidecars in a spool under the
// exact key a serving registry uses.
func MapKey(platform string, seed uint64, opt mctopalg.Options, d *graph.TaskDAG, refineBudget int) string {
	return mapKey(topoKey(platform, seed, opt), d.Hash(), len(d.Nodes), len(d.Edges), refineBudget)
}

// ParseMapKey inverts MapKey: it recovers the embedded topology key, the
// DAG hash and dimensions, and the refine budget. Strict like
// ParseTopoKey/ParsePlaceKey — the parsed fields must re-serialize to the
// exact input — and every failure wraps mctoperr.ErrInvalidRequest, so a
// daemon resolving an export request for a malformed mapping key answers
// 400, not 404 (the key could never name an entry, as opposed to naming
// one that is absent).
func ParseMapKey(key string) (topoK string, hash uint64, nodes, edges, refine int, err error) {
	fail := func(format string, args ...any) (string, uint64, int, int, int, error) {
		return "", 0, 0, 0, 0, fmt.Errorf("%w: bad mapping key %q: %s",
			mctoperr.ErrInvalidRequest, key, fmt.Sprintf(format, args...))
	}
	rest, ok := strings.CutPrefix(key, "map|")
	if !ok {
		return fail("missing map| prefix")
	}
	// The last three |-fields are n<nodes>, e<edges>, r<refine>; the hash
	// precedes them and the topology key (which may contain '|') is the
	// remainder.
	var tail [3]string
	for i := 2; i >= 0; i-- {
		j := strings.LastIndexByte(rest, '|')
		if j < 0 {
			return fail("missing dimension fields")
		}
		tail[i] = rest[j+1:]
		rest = rest[:j]
	}
	j := strings.LastIndexByte(rest, '|')
	if j < 0 {
		return fail("missing DAG hash")
	}
	topoK, hashStr := rest[:j], rest[j+1:]
	if len(hashStr) != 16 || strings.ToLower(hashStr) != hashStr {
		return fail("DAG hash %q is not 16 lowercase hex digits", hashStr)
	}
	hash, perr := strconv.ParseUint(hashStr, 16, 64)
	if perr != nil {
		return fail("bad DAG hash %q", hashStr)
	}
	dims := []struct {
		tag  string
		into *int
	}{{"n", &nodes}, {"e", &edges}, {"r", &refine}}
	for i, d := range dims {
		v, ok := strings.CutPrefix(tail[i], d.tag)
		if !ok || v == "" {
			return fail("dimension field %d is not %s-tagged", i, d.tag)
		}
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return fail("bad %s field %q", d.tag, v)
		}
		*d.into = n
	}
	if nodes < 1 {
		return fail("zero nodes")
	}
	if _, _, _, terr := ParseTopoKey(topoK); terr != nil {
		return fail("embedded topology key: %v", terr)
	}
	if mapKey(topoK, hash, nodes, edges, refine) != key {
		return fail("does not round-trip")
	}
	return topoK, hash, nodes, edges, refine, nil
}

// MapDAG returns the memoized mapping of the DAG onto the memoized
// topology for (platform, seed, opt) with the given refine budget.
func (r *Registry) MapDAG(platform string, seed uint64, opt mctopalg.Options, d *graph.TaskDAG, refineBudget int) (*taskmap.Mapping, error) {
	return r.MapDAGContext(context.Background(), platform, seed, opt, d, refineBudget)
}

// MapDAGContext is MapDAG with cancellation (see TopologyContext). The
// DAG is validated before the cache is consulted, so an invalid DAG can
// never occupy a singleflight slot or alias an entry by hash.
func (r *Registry) MapDAGContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options, d *graph.TaskDAG, refineBudget int) (*taskmap.Mapping, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil task DAG", mctoperr.ErrInvalidRequest)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", mctoperr.ErrInvalidRequest, err)
	}
	if refineBudget < 0 {
		return nil, fmt.Errorf("%w: negative refine budget %d", mctoperr.ErrInvalidRequest, refineBudget)
	}
	key := mapKey(topoKey(platform, seed, opt), d.Hash(), len(d.Nodes), len(d.Edges), refineBudget)
	v, _, err := r.get(ctx, KindMapping, key, func(ctx context.Context) (any, error) {
		ctx, msp := trace.Start(ctx, "registry.map")
		msp.SetInt("nodes", int64(len(d.Nodes)))
		msp.SetInt("edges", int64(len(d.Edges)))
		defer msp.End()
		t, err := r.TopologyContext(ctx, platform, seed, opt)
		if err != nil {
			msp.SetError(err)
			return nil, err
		}
		r.mappings.Add(1)
		start := time.Now()
		m, err := r.mapFn(ctx, t, d, taskmap.Options{RefineBudget: refineBudget})
		r.observeMapping(start, err)
		msp.SetError(err)
		return m, err
	})
	if err != nil {
		return nil, err
	}
	return v.(*taskmap.Mapping), nil
}
