package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

// realInfer is the full pipeline (simulate + infer + enrich) the facade
// installs; registry tests that need genuine topologies use it directly to
// avoid an import cycle with the root package.
func realInfer(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
	p, err := sim.ByName(platform)
	if err != nil {
		return nil, err
	}
	m, err := machine.NewSim(p, seed)
	if err != nil {
		return nil, err
	}
	res, err := mctopalg.Infer(m, opt)
	if err != nil {
		return nil, err
	}
	return plugins.Enrich(m, res.Topology, nil)
}

// fakeTopo builds a tiny real topology once; tests that only exercise cache
// mechanics share it through a stub InferFunc.
var fakeTopo = sync.OnceValue(func() *topo.Topology {
	t, err := realInfer("Ivy", 1, mctopalg.Options{Reps: 51})
	if err != nil {
		panic(err)
	}
	return t
})

func TestSingleflightCollapsesConcurrentInferences(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // widen the window for the herd
		return fakeTopo(), nil
	}})

	const herd = 32
	var wg sync.WaitGroup
	tops := make([]*topo.Topology, herd)
	for i := 0; i < herd; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			top, err := r.Topology("Ivy", 42, mctopalg.Options{Reps: 51})
			if err != nil {
				t.Error(err)
				return
			}
			tops[i] = top
		}()
	}
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("herd of %d triggered %d inferences, want 1", herd, n)
	}
	for i := 1; i < herd; i++ {
		if tops[i] != tops[0] {
			t.Fatalf("caller %d got a different *Topology than caller 0", i)
		}
	}
	st := r.Stats()
	if st.Inferences != 1 || st.Entries != 1 {
		t.Errorf("stats after herd: %+v", st)
	}
}

func TestConcurrentMixedReadersWriters(t *testing.T) {
	// Mixed workload across many keys under -race: topology hits, topology
	// misses, placements, stats reads and purges, all concurrent.
	r := New(Options{MaxEntries: 32, Shards: 4,
		Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
			return fakeTopo(), nil
		}})
	opt := mctopalg.Options{Reps: 51}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				seed := uint64((g + i) % 8)
				switch i % 4 {
				case 0:
					if _, err := r.Topology("Ivy", seed, opt); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := r.Place("Ivy", seed, opt, "RR_CORE", 8); err != nil {
						t.Error(err)
					}
				case 2:
					r.Stats()
				case 3:
					if i%20 == 3 {
						r.Purge()
					} else if _, err := r.Topology("Ivy", seed, opt); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestComputeConcurrencyBound(t *testing.T) {
	var cur, max atomic.Int64
	r := New(Options{MaxConcurrentComputes: 2,
		Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			cur.Add(-1)
			return fakeTopo(), nil
		}})
	opt := mctopalg.Options{Reps: 51}

	var wg sync.WaitGroup
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Topology("Ivy", seed, opt); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if m := max.Load(); m > 2 {
		t.Fatalf("observed %d concurrent inferences, bound is 2", m)
	}
	// Placement misses must not consume compute slots (their nested
	// topology computes do) — otherwise two placement misses could
	// deadlock on the semaphore.
	done := make(chan error, 1)
	go func() {
		_, err := r.Place("Ivy", 100, opt, "RR_CORE", 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("placement miss deadlocked on the compute semaphore")
	}
}

func TestLRUBoundAndEviction(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{MaxEntries: 4, Shards: 1,
		Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
			calls.Add(1)
			return fakeTopo(), nil
		}})
	opt := mctopalg.Options{Reps: 51}

	for seed := uint64(0); seed < 8; seed++ {
		if _, err := r.Topology("Ivy", seed, opt); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.Len(); n != 4 {
		t.Fatalf("entries = %d, want the MaxEntries bound of 4", n)
	}
	if ev := r.Stats().Evictions; ev != 4 {
		t.Fatalf("evictions = %d, want 4", ev)
	}

	// Seeds 4..7 are resident; 4 is now least recently used. Touch it, then
	// insert one more: seed 5 must be the victim.
	calls.Store(0)
	if _, err := r.Topology("Ivy", 4, opt); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatal("seed 4 should have been a cache hit")
	}
	if _, err := r.Topology("Ivy", 8, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Topology("Ivy", 4, opt); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("after touch+insert, re-reading seed 4 cost %d inferences, want 0 (LRU should have evicted 5)", calls.Load()-1+1)
	}
	if _, err := r.Topology("Ivy", 5, opt); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatal("seed 5 should have been evicted and re-inferred")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	r := New(Options{Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return fakeTopo(), nil
	}})
	opt := mctopalg.Options{Reps: 51}
	if _, err := r.Topology("Ivy", 1, opt); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	if _, err := r.Topology("Ivy", 1, opt); err != nil {
		t.Fatalf("second call should retry and succeed, got %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (errors must not be cached)", calls.Load())
	}
}

func TestPanickingInferDoesNotWedgeTheKey(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
		if calls.Add(1) == 1 {
			time.Sleep(100 * time.Millisecond) // hold the key so the waiter joins in-flight
			panic("inference exploded")
		}
		return fakeTopo(), nil
	}})
	opt := mctopalg.Options{Reps: 51}

	// A waiter that joins the in-flight panicking computation must get an
	// error, not hang.
	waited := make(chan error, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		go func() {
			time.Sleep(10 * time.Millisecond) // join while the leader holds the key
			_, err := r.Topology("Ivy", 1, opt)
			waited <- err
		}()
		r.Topology("Ivy", 1, opt)
	}()
	select {
	case err := <-waited:
		if err == nil {
			t.Error("waiter on a panicked computation got a nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on a panicked computation")
	}

	// The key must be retryable afterwards.
	if _, err := r.Topology("Ivy", 1, opt); err != nil {
		t.Fatalf("lookup after panic failed: %v", err)
	}
}

func TestOptionsKeyDistinguishesConfigurations(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
		calls.Add(1)
		return fakeTopo(), nil
	}})
	if _, err := r.Topology("Ivy", 1, mctopalg.Options{Reps: 51}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Topology("Ivy", 1, mctopalg.Options{Reps: 101}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct Reps shared one cache entry (calls = %d)", calls.Load())
	}
	// Parallelism must NOT split the cache: the result is identical by
	// construction.
	if _, err := r.Topology("Ivy", 1, mctopalg.Options{Reps: 51, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatal("Parallelism leaked into the cache key")
	}
	// Zero-value options and explicit defaults are the same inference and
	// must share one entry (keys are normalized before hashing).
	if _, err := r.Topology("Ivy", 2, mctopalg.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Topology("Ivy", 2, mctopalg.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("zero-value and DefaultOptions() split into %d entries, want 1", calls.Load()-2)
	}
	// MaxClusters changes clustering and must split the cache.
	capped := mctopalg.DefaultOptions()
	capped.Cluster.MaxClusters = 2
	if _, err := r.Topology("Ivy", 2, capped); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatal("Cluster.MaxClusters missing from the cache key")
	}
}

func TestPlaceCachedAndDerivedFromCachedTopology(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
		calls.Add(1)
		return realInfer(platform, seed, opt)
	}})
	opt := mctopalg.Options{Reps: 51}

	p1, err := r.Place("Ivy", 42, opt, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Place("Ivy", 42, opt, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical placement queries returned distinct placements")
	}
	if p1.NThreads() != 30 || p1.Policy() != place.ConHWC {
		t.Fatalf("placement wrong: %d threads, policy %v", p1.NThreads(), p1.Policy())
	}
	// A different policy on the same platform reuses the cached topology.
	if _, err := r.Place("Ivy", 42, opt, "RR_CORE", 8); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("inferences = %d, want 1 (placements must share the topology)", calls.Load())
	}
	if _, err := r.Place("Ivy", 42, opt, "NO_SUCH_POLICY", 8); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

// TestCachedLookupSpeedup is the acceptance check of the service layer: a
// cached Topology lookup must be at least 100x faster than a cold
// InferPlatform. The margin in practice is ~10^4-10^5, so the assertion is
// far from flaky.
func TestCachedLookupSpeedup(t *testing.T) {
	r := New(Options{Infer: realInfer})
	opt := mctopalg.Options{Reps: 51}

	coldStart := time.Now()
	if _, err := r.Topology("Ivy", 42, opt); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	const hits = 1000
	hitStart := time.Now()
	for i := 0; i < hits; i++ {
		if _, err := r.Topology("Ivy", 42, opt); err != nil {
			t.Fatal(err)
		}
	}
	hit := time.Since(hitStart) / hits
	if hit == 0 {
		hit = 1
	}
	speedup := float64(cold) / float64(hit)
	t.Logf("cold infer %v, cached lookup %v, speedup %.0fx", cold, hit, speedup)
	if speedup < 100 {
		t.Fatalf("cached lookup only %.1fx faster than cold inference, want >= 100x", speedup)
	}
}

func TestShardingSpreadsKeys(t *testing.T) {
	l := NewLRU(1024, 8)
	used := map[*lruShard]bool{}
	for i := 0; i < 64; i++ {
		used[l.shardOf(fmt.Sprintf("topo|Ivy|%d|", i))] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 keys landed on %d shard(s); hashing is broken", len(used))
	}
	r := New(Options{Shards: 8,
		Infer: func(string, uint64, mctopalg.Options) (*topo.Topology, error) {
			return fakeTopo(), nil
		}})
	flights := map[*flightShard]bool{}
	for i := 0; i < 64; i++ {
		flights[r.flightOf(fmt.Sprintf("topo|Ivy|%d|", i))] = true
	}
	if len(flights) < 2 {
		t.Fatalf("64 keys landed on %d flight stripe(s); hashing is broken", len(flights))
	}
}

// TestPlaceBatchSharesTopologyAndCache: a batch must infer at most once,
// share cache entries with single-request Place calls, and report
// per-request errors without failing the whole batch.
func TestPlaceBatchSharesTopologyAndCache(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
		calls.Add(1)
		return realInfer(platform, seed, opt)
	}})
	opt := mctopalg.Options{Reps: 51}

	reqs := []PlaceRequest{
		{Policy: "CON_HWC", NThreads: 30},
		{Policy: "RR_CORE", NThreads: 8},
		{Policy: "NO_SUCH_POLICY", NThreads: 4},
		{Policy: "SEQUENTIAL", NThreads: 0},
	}
	results, err := r.PlaceBatch("Ivy", 42, opt, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	if calls.Load() != 1 {
		t.Fatalf("inferences = %d, want 1 (the batch must share one topology lookup)", calls.Load())
	}
	for i, res := range results {
		wantErr := reqs[i].Policy == "NO_SUCH_POLICY"
		if wantErr {
			if !errors.Is(res.Err, place.ErrInvalid) {
				t.Errorf("request %d: err = %v, want ErrInvalid", i, res.Err)
			}
			continue
		}
		if res.Err != nil || res.Placement == nil {
			t.Fatalf("request %d: (%v, %v)", i, res.Placement, res.Err)
		}
	}
	if got := results[0].Placement.NThreads(); got != 30 {
		t.Errorf("CON_HWC placement has %d threads, want 30", got)
	}

	// Batch entries and single-request entries share the cache: the same
	// placement pointer comes back both ways, with no new inference.
	single, err := r.Place("Ivy", 42, opt, "CON_HWC", 30)
	if err != nil {
		t.Fatal(err)
	}
	if single != results[0].Placement {
		t.Error("single Place after PlaceBatch returned a distinct placement")
	}
	again, err := r.PlaceBatch("Ivy", 42, opt, reqs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Placement != results[0].Placement || again[1].Placement != results[1].Placement {
		t.Error("repeated PlaceBatch returned distinct placements")
	}
	if calls.Load() != 1 {
		t.Fatalf("inferences = %d after reuse, want 1", calls.Load())
	}

	// Topology-level failures fail the whole batch.
	if _, err := r.PlaceBatch("NoSuchPlatform", 42, opt, reqs); err == nil {
		t.Fatal("PlaceBatch on an unknown platform should fail")
	}
	// An empty batch is answered (it still resolves the topology).
	empty, err := r.PlaceBatch("Ivy", 42, opt, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: (%v, %v)", empty, err)
	}
}

// TestPlaceBatchConcurrent hammers PlaceBatch from many goroutines (run
// with -race); every caller must see the same shared placements.
func TestPlaceBatchConcurrent(t *testing.T) {
	var calls atomic.Int64
	r := New(Options{Infer: func(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
		calls.Add(1)
		return realInfer(platform, seed, opt)
	}})
	opt := mctopalg.Options{Reps: 51}
	reqs := []PlaceRequest{
		{Policy: "CON_HWC", NThreads: 16},
		{Policy: "BALANCE_CORE", NThreads: 12},
		{Policy: "RR_HWC", NThreads: 0},
	}
	const goroutines = 16
	var wg sync.WaitGroup
	got := make([][]BatchResult, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.PlaceBatch("Ivy", 7, opt, reqs)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			got[g] = res
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("inferences = %d, want 1", calls.Load())
	}
	for g := 1; g < goroutines; g++ {
		for i := range reqs {
			if got[g] == nil || got[0] == nil {
				t.Fatal("missing results")
			}
			if got[g][i].Placement != got[0][i].Placement {
				t.Fatalf("goroutine %d request %d: distinct placement", g, i)
			}
		}
	}
}
