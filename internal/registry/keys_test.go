package registry

import (
	"strings"
	"testing"

	"repro/internal/mctopalg"
	"repro/internal/place"
)

func TestParseTopoKeyRoundTrip(t *testing.T) {
	cases := []struct {
		platform string
		seed     uint64
		opt      mctopalg.Options
	}{
		{"Ivy", 42, mctopalg.Options{}},
		{"Ivy", 42, mctopalg.DefaultOptions()},
		{"SPARC", 0, mctopalg.Options{Reps: 201}},
		{"Westmere", 18446744073709551615, mctopalg.Options{Reps: 51, SkipMemoryProbe: true}},
		{"Haswell", 7, mctopalg.Options{Reps: 201, ForkedEnrich: true}},
		{"a|weird|name", 1, mctopalg.Options{Reps: 11}}, // '|' in the platform survives
		{"gen:circulant:s64:c8:t2", 3, mctopalg.Options{Sampling: mctopalg.SamplingOptions{Enabled: true}}},
		{"gen:mesh:s25:c2:t2:v7", 5, mctopalg.Options{
			Sampling: mctopalg.SamplingOptions{Enabled: true, Pilots: 16, MinContexts: 32, VerifyPerBlock: 9},
		}},
	}
	for _, c := range cases {
		key := TopoKey(c.platform, c.seed, c.opt)
		platform, seed, opt, err := ParseTopoKey(key)
		if err != nil {
			t.Fatalf("ParseTopoKey(%q): %v", key, err)
		}
		if platform != c.platform || seed != c.seed {
			t.Fatalf("ParseTopoKey(%q) = (%q, %d), want (%q, %d)", key, platform, seed, c.platform, c.seed)
		}
		// The recovered options must map to the same cache entry.
		if got := TopoKey(platform, seed, opt); got != key {
			t.Fatalf("re-serialized key %q != original %q", got, key)
		}
		want := c.opt.Normalized()
		want.Parallelism = 0 // excluded from keys by design, so not recoverable
		if opt != want {
			t.Fatalf("recovered options %+v, want normalized %+v", opt, want)
		}
	}
}

func TestParseTopoKeyRejectsMalformed(t *testing.T) {
	good := TopoKey("Ivy", 42, mctopalg.Options{Reps: 201})
	bad := []string{
		"",
		"topo|",
		"place|Ivy|42|r201",
		"topo|Ivy|42",                      // no option block
		"topo|Ivy|nan|r201",                // bad seed
		good + ",x1",                       // trailing junk field
		good + "junk",                      // trailing junk bytes
		strings.Replace(good, "r", "R", 1), // wrong tag
		good[:strings.Index(good, ",se")],  // pre-sampling 10-field key must not resolve
		"topo||42|" + good[strings.LastIndexByte(good, '|')+1:], // empty platform
	}
	for _, key := range bad {
		if _, _, _, err := ParseTopoKey(key); err == nil {
			t.Fatalf("ParseTopoKey(%q) accepted a malformed key", key)
		}
	}
}

func TestParsePlaceKeyRoundTrip(t *testing.T) {
	tk := TopoKey("Opteron", 9, mctopalg.Options{Reps: 51})
	for _, pol := range []place.Orderer{place.RRCore, place.PowerPolicy, place.Limit(place.ConHWC, 4)} {
		for _, n := range []int{0, 8, 48} {
			key := placeKey(tk, pol, n)
			gotTk, gotPol, gotN, err := ParsePlaceKey(key)
			if err != nil {
				t.Fatalf("ParsePlaceKey(%q): %v", key, err)
			}
			if gotTk != tk || gotPol != pol.Name() || gotN != n {
				t.Fatalf("ParsePlaceKey(%q) = (%q, %q, %d), want (%q, %q, %d)",
					key, gotTk, gotPol, gotN, tk, pol.Name(), n)
			}
		}
	}
}

func TestParsePlaceKeyRejectsMalformed(t *testing.T) {
	tk := TopoKey("Ivy", 42, mctopalg.Options{Reps: 201})
	bad := []string{
		"",
		tk,                         // a topology key is not a placement key
		"place|" + tk,              // no policy/threads
		"place|" + tk + "|RR_CORE", // threads missing
		"place|" + tk + "|RR_CORE|minus",
		"place|" + tk + "|RR_CORE|-1",
		"place|not-a-topo-key|RR_CORE|8",
		"place|" + tk + "||8",          // empty policy
		"place|" + tk + "|RR_CORE|007", // non-canonical threads must not alias |7
		"place|" + tk + "|RR_CORE|+8",
	}
	for _, key := range bad {
		if _, _, _, err := ParsePlaceKey(key); err == nil {
			t.Fatalf("ParsePlaceKey(%q) accepted a malformed key", key)
		}
	}
}
