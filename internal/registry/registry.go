// Package registry is the concurrency-safe topology service layer on top of
// MCTOP-ALG and MCTOP-PLACE.
//
// The paper's deployment model is "infer once, reuse everywhere": a
// description file is "created once, then used to load the topology"
// (Section 2). Inference is O(N²) pair measurements and therefore orders of
// magnitude more expensive than any topology query, so a server answering
// topology or placement questions must never run it twice for the same
// inputs. The Registry memoizes inference results and derived placements
// under a key of (platform, seed, options-hash):
//
//   - singleflight: concurrent misses on the same key collapse into one
//     inference — the first caller computes, the rest wait for its result;
//   - tiered: the cache behind the singleflight is a pluggable Store
//     (store.go). The default is the sharded, LRU-bounded in-memory tier
//     (lru.go), so a long-running daemon's memory stays flat; chaining it
//     over internal/spool's description-file tier (NewTiered) makes the
//     cache survive restarts — a cold miss that hits the spool decodes a
//     description file instead of re-running the O(N²) inference.
//
// All methods are safe for concurrent use and pass `go test -race`.
package registry

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/taskmap"
	"repro/internal/topo"
	"repro/internal/trace"
)

// InferFunc produces a topology for a platform/seed/options triple. The
// facade wires InferPlatformDetailed (simulate + infer + enrich) here; tests
// substitute cheap or counting implementations.
type InferFunc func(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error)

// InferCtxFunc is InferFunc with cancellation: the context is the one the
// winning caller of a singleflight wave passed in, and a conforming
// implementation returns ctx.Err() promptly once it fires.
type InferCtxFunc func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error)

// Options configures a Registry. The zero value of every field has a sane
// default except the inference function: exactly one of Infer or InferCtx
// is required (InferCtx wins when both are set).
type Options struct {
	// Infer computes a topology on a cache miss, ignoring cancellation.
	// Kept for callers predating the context-aware API; new code should
	// set InferCtx.
	Infer InferFunc
	// InferCtx computes a topology on a cache miss, honoring the context
	// of the caller that executes the computation.
	InferCtx InferCtxFunc
	// Store is the cache behind the singleflight — a single tier or a
	// NewTiered chain. Nil builds the default in-memory LRU from
	// MaxEntries and Shards; when Store is set, MaxEntries and Shards are
	// ignored (bound the LRU tier you pass in instead).
	Store Store
	// MaxEntries bounds the cached values of the default LRU store
	// (topologies and placements each count as one entry); the bound is
	// split evenly across shards, so a shard receiving a skewed share of
	// hot keys may evict before the store as a whole is full.
	// Default 256.
	MaxEntries int
	// Shards is the number of independently locked shards of the default
	// LRU store (and of the singleflight table). Default 8.
	Shards int
	// MaxConcurrentComputes bounds how many cache misses may compute at
	// once across the whole registry; further misses queue. One inference
	// already fans out over GOMAXPROCS workers, so running many
	// concurrently only oversubscribes the CPU — and without a bound a
	// client sweeping distinct seeds can saturate a serving daemon
	// indefinitely. Default 2; < 0 means unlimited.
	MaxConcurrentComputes int
	// MapFn computes a task-graph mapping on a cache miss. Nil defaults to
	// taskmap.Map; the daemon wraps the default for fault injection, tests
	// substitute counting implementations.
	MapFn MapFunc
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	Hits       int64 // lookups answered from the store (any tier)
	Misses     int64 // lookups that computed (or joined a computation)
	Inferences int64 // actual topology inferences executed
	Placements int64 // actual placements computed
	Mappings   int64 // actual task-graph mappings computed
	Evictions  int64 // entries dropped by a capacity bound, summed over tiers
	Entries    int   // entries resident in the fastest tier
	// Tiers breaks the store down per tier (LRU, spool, …), fastest first.
	Tiers []StoreStats `json:",omitempty"`
}

// Registry memoizes topologies, placements and task-graph mappings.
type Registry struct {
	infer    InferCtxFunc
	mapFn    MapFunc
	store    Store
	flights  []*flightShard
	computes chan struct{} // semaphore over concurrent inferences; nil = unlimited

	hits       atomic.Int64
	misses     atomic.Int64
	inferences atomic.Int64
	placements atomic.Int64
	mappings   atomic.Int64

	// observer receives compute-duration callbacks (observe.go); nil when
	// nothing is attached.
	observer atomic.Pointer[Observer]
}

// flightShard is one lock stripe of the singleflight table, independent of
// the store so pluggable tiers never hold cache locks while computing.
type flightShard struct {
	mu       sync.Mutex
	inflight map[string]*call
}

// call is one in-flight computation; late arrivals wait on done and share
// val/err with the caller that executed it.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New creates a registry. It panics if both opt.Infer and opt.InferCtx are
// nil: a registry without an inference function cannot answer anything.
func New(opt Options) *Registry {
	if opt.InferCtx == nil && opt.Infer == nil {
		panic("registry: Options.Infer or Options.InferCtx is required")
	}
	if opt.InferCtx == nil {
		infer := opt.Infer
		opt.InferCtx = func(_ context.Context, platform string, seed uint64, o mctopalg.Options) (*topo.Topology, error) {
			return infer(platform, seed, o)
		}
	}
	if opt.Shards <= 0 {
		opt.Shards = 8
	}
	if opt.Store == nil {
		opt.Store = NewLRU(opt.MaxEntries, opt.Shards)
	}
	if opt.MapFn == nil {
		opt.MapFn = taskmap.Map
	}
	r := &Registry{
		infer:   opt.InferCtx,
		mapFn:   opt.MapFn,
		store:   opt.Store,
		flights: make([]*flightShard, opt.Shards),
	}
	for i := range r.flights {
		r.flights[i] = &flightShard{inflight: make(map[string]*call)}
	}
	if opt.MaxConcurrentComputes == 0 {
		opt.MaxConcurrentComputes = 2
	}
	if opt.MaxConcurrentComputes > 0 {
		r.computes = make(chan struct{}, opt.MaxConcurrentComputes)
	}
	return r
}

// flightOf picks a singleflight stripe by an inlined FNV-1a over the key
// (same rationale as LRU.shardOf: no allocations on the lookup path).
func (r *Registry) flightOf(key string) *flightShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return r.flights[h%uint32(len(r.flights))]
}

// get returns the cached value for key, or computes it via fn exactly once
// per concurrent wave of callers (singleflight) and writes the result
// through the store. hit reports whether this call was answered from the
// store without computing or waiting on a computation.
//
// Cancellation semantics: a waiter whose ctx fires while another caller
// computes stops waiting and returns ctx.Err() — the computation itself
// keeps running under its owner's context and still populates the cache.
// When the owner's own ctx fires, fn is expected to return ctx.Err();
// nothing is cached and the in-flight slot is removed. Waiters of that
// wave whose contexts are still healthy do not inherit the owner's
// cancellation: they retry the lookup, and one of them becomes the next
// owner — one flaky client must not fail every concurrent miss on the key.
func (r *Registry) get(ctx context.Context, kind Kind, key string, fn func(context.Context) (any, error)) (val any, hit bool, err error) {
	// The lookup span covers the whole resolution — store walk,
	// singleflight wait or owned compute — and records which tier answered.
	// With no span in ctx this is one context lookup and every call below
	// is a nil-receiver no-op.
	ctx, lsp := trace.Start(ctx, "registry.lookup")
	lsp.SetAttr("kind", kind.String())
	defer func() {
		lsp.SetBool("hit", hit)
		lsp.SetError(err)
		lsp.End()
	}()
	// getStore resolves through the store, attributing the serving tier
	// when the store can name it (Tiered and the builtin tiers can) — the
	// record behind request logs' tier field and the served-by-tier
	// counters.
	getStore := func() (any, bool) {
		if tg, ok := r.store.(CtxTierGetter); ok {
			v, tier, ok := tg.GetWithTierContext(ctx, kind, key)
			if ok {
				setServed(ctx, tier)
				lsp.SetAttr("tier", tier)
			}
			return v, ok
		}
		if tg, ok := r.store.(TierGetter); ok {
			v, tier, ok := tg.GetWithTier(kind, key)
			if ok {
				setServed(ctx, tier)
				lsp.SetAttr("tier", tier)
			}
			return v, ok
		}
		v, ok := tierGet(ctx, r.store, kind, key)
		if ok {
			setServed(ctx, tierNameOf(r.store))
			lsp.SetAttr("tier", tierNameOf(r.store))
		}
		return v, ok
	}
	// Fast path: a store hit never touches the singleflight locks. On a
	// tiered store this may decode from a persistent tier — still orders
	// of magnitude cheaper than computing.
	if v, ok := getStore(); ok {
		r.hits.Add(1)
		return v, true, nil
	}
	r.misses.Add(1) // this call is at most one hit or one miss, even across retries

	f := r.flightOf(key)
	var c *call
	for c == nil {
		f.mu.Lock()
		// Re-check the store under the flight lock: an owner publishes its
		// result to the store before clearing the in-flight slot, so a miss
		// observed before the lock may have landed by now.
		if v, ok := getStore(); ok {
			f.mu.Unlock()
			// This caller registered a miss; the entry appearing now does
			// not make the call a hit.
			return v, false, nil
		}
		if w, ok := f.inflight[key]; ok {
			f.mu.Unlock()
			lsp.AddEvent("singleflight.wait")
			select {
			case <-w.done:
				if w.err != nil && ctx.Err() == nil &&
					(errors.Is(w.err, context.Canceled) || errors.Is(w.err, context.DeadlineExceeded)) {
					lsp.AddEvent("singleflight.retry") // the owner's ctx fired, not ours
					continue
				}
				if w.err == nil {
					setServed(ctx, "coalesced")
					lsp.SetAttr("tier", "coalesced")
				}
				return w.val, false, w.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c = &call{done: make(chan struct{})}
		f.inflight[key] = c
		f.mu.Unlock()
	}

	// The cleanup must run even if fn panics: leaving the inflight entry
	// behind would hang every future lookup of this key on c.done. A panic
	// still propagates to the computing caller, but waiters get an error
	// and later lookups retry.
	completed := false
	defer func() {
		if !completed {
			c.err = fmt.Errorf("registry: computation for %q panicked", key)
		}
		if c.err == nil {
			// Publish before clearing the in-flight slot: anyone who misses
			// the store after this point either sees the entry on their
			// locked re-check or finds this call still registered.
			r.store.Put(kind, key, c.val)
		}
		f.mu.Lock()
		delete(f.inflight, key)
		f.mu.Unlock()
		close(c.done)
	}()

	lsp.AddEvent("singleflight.owner")
	c.val, c.err = fn(ctx)
	completed = true
	if c.err == nil {
		// Overrides any tier a nested lookup attributed (a placement
		// compute hits the store for its topology): the request's answer
		// was computed here.
		setServed(ctx, "computed")
		lsp.SetAttr("tier", "computed")
	}
	return c.val, false, c.err
}

// topoKey serializes the platform, seed and every inference option that can
// change the result, field by field, so distinct configurations never
// collide and the key stays stable across runs — the same key the spool
// tier persists in description files, so a restarted daemon rebuilds the
// exact mapping. Options are normalized first, so the zero value and an
// explicit DefaultOptions() share one entry. Parallelism is deliberately
// excluded: by construction it does not affect the inferred topology. Keys
// are built with strconv appends — this runs on every lookup of the serving
// hot path, where fmt.Sprintf's reflection would be the dominant allocation.
func topoKey(platform string, seed uint64, opt mctopalg.Options) string {
	o := opt.Normalized()
	b := make([]byte, 0, 96)
	b = append(b, "topo|"...)
	b = append(b, platform...)
	b = append(b, '|')
	b = strconv.AppendUint(b, seed, 10)
	b = append(b, "|r"...)
	b = strconv.AppendInt(b, int64(o.Reps), 10)
	b = append(b, ",s"...)
	b = strconv.AppendFloat(b, o.StdevThreshold, 'g', -1, 64)
	b = append(b, ",sm"...)
	b = strconv.AppendFloat(b, o.StdevThresholdMax, 'g', -1, 64)
	b = append(b, ",mr"...)
	b = strconv.AppendInt(b, int64(o.MaxRetries), 10)
	b = append(b, ",cg"...)
	b = strconv.AppendFloat(b, o.Cluster.RelGap, 'g', -1, 64)
	b = append(b, ",ca"...)
	b = strconv.AppendInt(b, o.Cluster.AbsGap, 10)
	b = append(b, ",cm"...)
	b = strconv.AppendInt(b, int64(o.Cluster.MaxClusters), 10)
	b = append(b, ",su"...)
	b = strconv.AppendInt(b, o.SpinUnit, 10)
	b = append(b, ",smp"...)
	b = strconv.AppendBool(b, o.SkipMemoryProbe)
	b = append(b, ",fe"...)
	b = strconv.AppendBool(b, o.ForkedEnrich)
	b = append(b, ",se"...)
	b = strconv.AppendBool(b, o.Sampling.Enabled)
	b = append(b, ",sp"...)
	b = strconv.AppendInt(b, int64(o.Sampling.Pilots), 10)
	b = append(b, ",smc"...)
	b = strconv.AppendInt(b, int64(o.Sampling.MinContexts), 10)
	b = append(b, ",sv"...)
	b = strconv.AppendInt(b, int64(o.Sampling.VerifyPerBlock), 10)
	return string(b)
}

// TopoKey is the registry's cache key for a topology — exported for tools
// (mctop import/export) that install or extract description files in a
// spool under the exact key a serving registry will look up.
func TopoKey(platform string, seed uint64, opt mctopalg.Options) string {
	return topoKey(platform, seed, opt)
}

// Topology returns the memoized topology for (platform, seed, opt),
// inferring it on first use.
func (r *Registry) Topology(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
	t, _, err := r.LookupTopologyContext(context.Background(), platform, seed, opt)
	return t, err
}

// TopologyContext is Topology with cancellation: a waiter stops waiting
// and returns ctx.Err() when its context fires, and the caller that owns
// the inference aborts it (the inference function returns ctx.Err()).
func (r *Registry) TopologyContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
	t, _, err := r.LookupTopologyContext(ctx, platform, seed, opt)
	return t, err
}

// LookupTopology is Topology plus a per-call cache indicator: hit is true
// only when this call was answered from the store without running or
// waiting on an inference (servers report it per request; the global Stats
// counters cannot distinguish concurrent callers).
func (r *Registry) LookupTopology(platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, bool, error) {
	return r.LookupTopologyContext(context.Background(), platform, seed, opt)
}

// LookupTopologyContext is LookupTopology with cancellation.
func (r *Registry) LookupTopologyContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, bool, error) {
	v, hit, err := r.get(ctx, KindTopology, topoKey(platform, seed, opt), func(ctx context.Context) (any, error) {
		ctx, isp := trace.Start(ctx, "registry.infer")
		isp.SetAttr("platform", platform)
		defer isp.End()
		// Only inferences take a compute slot. Placement computes stay
		// ungated: they are cheap, and a placement miss computes its
		// topology through this very path — gating both would let two
		// placement misses exhaust the slots and deadlock on their
		// nested inferences. The acquire honors cancellation so a queued
		// caller can give up before its inference starts.
		if r.computes != nil {
			select {
			case r.computes <- struct{}{}:
				isp.AddEvent("semaphore.acquired")
				defer func() { <-r.computes }()
			case <-ctx.Done():
				isp.SetError(ctx.Err())
				return nil, ctx.Err()
			}
		}
		r.inferences.Add(1)
		start := time.Now()
		t, err := r.infer(ctx, platform, seed, opt)
		r.observeInference(start, err)
		isp.SetError(err)
		return t, err
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*topo.Topology), hit, nil
}

// placeKey extends a topology key with the placement parameters. Built with
// appends for the same reason topoKey is: one of these is assembled per
// placement request on the serving hot path. The policy is identified by
// its Name — builtins keep the MCTOP_PLACE_* names they always had, so
// existing cache keys are unchanged; composed and registered policies key
// by their composed/registered name (Orderer's contract: the name uniquely
// identifies the ordering).
func placeKey(tk string, pol place.Orderer, nThreads int) string {
	b := make([]byte, 0, len(tk)+32)
	b = append(b, "place|"...)
	b = append(b, tk...)
	b = append(b, '|')
	b = append(b, pol.Name()...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(nThreads), 10)
	return string(b)
}

// Place returns the memoized placement of nThreads threads under the named
// policy (builtin or registered, as accepted by place.Resolve) on the
// memoized topology for (platform, seed, opt). The placement is shared
// between callers: treat it as read-only (Contexts, String, the Figure 7
// accessors) — the PinNext cursor is global to all users of the registry.
func (r *Registry) Place(platform string, seed uint64, opt mctopalg.Options, policy string, nThreads int) (*place.Placement, error) {
	return r.PlaceContext(context.Background(), platform, seed, opt, policy, nThreads)
}

// PlaceContext is Place with cancellation (see TopologyContext).
func (r *Registry) PlaceContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options, policy string, nThreads int) (*place.Placement, error) {
	pol, err := place.Resolve(policy)
	if err != nil {
		return nil, err
	}
	return r.PlaceWithContext(ctx, platform, seed, opt, pol, nThreads)
}

// PlaceWithContext places with a typed policy — a builtin place.Policy, a
// combinator chain, or any Orderer — against the memoized topology,
// memoizing the placement under the policy's Name. This is how callers use
// composed policies that are not registered under a name.
func (r *Registry) PlaceWithContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options, pol place.Orderer, nThreads int) (*place.Placement, error) {
	if pol == nil {
		return nil, fmt.Errorf("%w: nil policy", place.ErrInvalid)
	}
	if pol.Name() == "" {
		// Placements memoize by policy name; an empty name would let every
		// anonymous policy share one cache slot and serve wrong mappings.
		return nil, fmt.Errorf("%w: policy has empty name", place.ErrInvalid)
	}
	key := placeKey(topoKey(platform, seed, opt), pol, nThreads)
	v, _, err := r.get(ctx, KindPlacement, key, func(ctx context.Context) (any, error) {
		ctx, psp := trace.Start(ctx, "registry.place")
		psp.SetAttr("policy", pol.Name())
		defer psp.End()
		t, err := r.TopologyContext(ctx, platform, seed, opt)
		if err != nil {
			psp.SetError(err)
			return nil, err
		}
		r.placements.Add(1)
		start := time.Now()
		pl, err := place.NewFrom(t, pol, place.Options{NThreads: nThreads})
		r.observePlacement(start, err)
		psp.SetError(err)
		return pl, err
	})
	if err != nil {
		return nil, err
	}
	return v.(*place.Placement), nil
}

// PlaceRequest is one (policy, threads) pair of a PlaceBatch call.
type PlaceRequest struct {
	Policy   string
	NThreads int
}

// BatchResult is one PlaceBatch answer: a placement, or the per-request
// error that produced none (unknown policy, POWER without power data, …).
type BatchResult struct {
	Placement *place.Placement
	Err       error
}

// PlaceBatch answers many placement requests against one topology in a
// single call: the (platform, seed, opt) lookup — and, on a cold start, the
// O(N²) inference — happens once, and every request is served from the same
// topology's precomputed query index. Results are cached under the same
// keys Place uses, so batch and single-request traffic share entries.
// Per-request failures land in the matching BatchResult; the returned error
// is reserved for the topology itself being unavailable.
func (r *Registry) PlaceBatch(platform string, seed uint64, opt mctopalg.Options, reqs []PlaceRequest) ([]BatchResult, error) {
	return r.PlaceBatchContext(context.Background(), platform, seed, opt, reqs)
}

// PlaceBatchContext is PlaceBatch with cancellation: the context covers the
// topology lookup and every per-request placement, so a request deadline
// bounds the whole batch.
func (r *Registry) PlaceBatchContext(ctx context.Context, platform string, seed uint64, opt mctopalg.Options, reqs []PlaceRequest) ([]BatchResult, error) {
	t, _, err := r.LookupTopologyContext(ctx, platform, seed, opt)
	if err != nil {
		return nil, err
	}
	tk := topoKey(platform, seed, opt)
	out := make([]BatchResult, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pol, err := place.Resolve(req.Policy)
		if err != nil {
			out[i].Err = err
			continue
		}
		nThreads := req.NThreads
		v, _, err := r.get(ctx, KindPlacement, placeKey(tk, pol, nThreads), func(context.Context) (any, error) {
			r.placements.Add(1)
			start := time.Now()
			pl, err := place.NewFrom(t, pol, place.Options{NThreads: nThreads})
			r.observePlacement(start, err)
			return pl, err
		})
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Placement = v.(*place.Placement)
	}
	return out, nil
}

// Stats snapshots the registry's counters. The snapshot is not one atomic
// cut — counters keep advancing while it is taken — but every field is read
// exactly once, in a fixed order (registry counters first, then the tier
// snapshots, then residency), so each individual counter is monotonically
// non-decreasing across successive snapshots and a scraper diffing two
// snapshots never sees a counter move backwards.
func (r *Registry) Stats() Stats {
	hits := r.hits.Load()
	misses := r.misses.Load()
	inferences := r.inferences.Load()
	placements := r.placements.Load()
	mappings := r.mappings.Load()
	tiers := r.store.Stats()
	var evictions int64
	for _, t := range tiers {
		evictions += t.Evictions
	}
	return Stats{
		Hits:       hits,
		Misses:     misses,
		Inferences: inferences,
		Placements: placements,
		Mappings:   mappings,
		Evictions:  evictions,
		Entries:    r.store.Len(),
		Tiers:      tiers,
	}
}

// Len returns the number of entries resident in the store's fastest tier.
func (r *Registry) Len() int {
	return r.store.Len()
}

// Store returns the registry's cache store (to reach tier-specific APIs —
// a spool tier's directory, say).
func (r *Registry) Store() Store { return r.store }

// Purge drops every cached entry from every tier — a persistent tier's
// files included (in-flight computations are unaffected and will
// re-populate the cache when they finish).
func (r *Registry) Purge() {
	r.store.Purge()
}

// Flush blocks until every tier with buffered writes has persisted them —
// what a daemon calls on SIGTERM so a restart warm-starts from a complete
// spool. A registry over the default in-memory store flushes trivially.
func (r *Registry) Flush() error {
	if f, ok := r.store.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Close flushes and releases tier resources (background writers). The
// registry itself remains usable for in-memory lookups, but persistent
// tiers stop accepting writes.
func (r *Registry) Close() error {
	if c, ok := r.store.(Closer); ok {
		return c.Close()
	}
	return nil
}
