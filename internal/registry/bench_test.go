package registry

import (
	"testing"

	"repro/internal/mctopalg"
)

// BenchmarkColdInfer is the price of one uncached inference — what every
// caller of InferPlatform paid before the registry existed.
func BenchmarkColdInfer(b *testing.B) {
	opt := mctopalg.Options{Reps: 51}
	for i := 0; i < b.N; i++ {
		if _, err := realInfer("Ivy", 42, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyHit is a warm registry lookup; compare against
// BenchmarkColdInfer for the memoization win (>= 100x by acceptance, ~10^5x
// in practice).
func BenchmarkTopologyHit(b *testing.B) {
	r := New(Options{Infer: realInfer})
	opt := mctopalg.Options{Reps: 51}
	if _, err := r.Topology("Ivy", 42, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Topology("Ivy", 42, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyHitParallel hammers one cached key from all procs — the
// hot path of a serving daemon.
func BenchmarkTopologyHitParallel(b *testing.B) {
	r := New(Options{Infer: realInfer})
	opt := mctopalg.Options{Reps: 51}
	if _, err := r.Topology("Ivy", 42, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := r.Topology("Ivy", 42, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlaceHit is a warm placement lookup.
func BenchmarkPlaceHit(b *testing.B) {
	r := New(Options{Infer: realInfer})
	opt := mctopalg.Options{Reps: 51}
	if _, err := r.Place("Ivy", 42, opt, "CON_HWC", 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Place("Ivy", 42, opt, "CON_HWC", 30); err != nil {
			b.Fatal(err)
		}
	}
}
