package registry

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is the in-memory tier: a sharded, LRU-bounded map — the cache the
// registry always had, now behind the Store interface so it can head a
// tiered chain. Keys hash onto independently locked shards, so concurrent
// lookups of different topologies never contend; each shard evicts its
// least-recently-used entries beyond its capacity share.
type LRU struct {
	shards []*lruShard

	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	kinds     kindCounters
}

// TierName implements TierNamer.
func (l *LRU) TierName() string { return "lru" }

type lruShard struct {
	mu      sync.Mutex
	cap     int // this shard's share of the entry bound
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type lruEntry struct {
	key  string
	kind Kind
	val  any
}

// NewLRU creates an LRU store bounded to maxEntries entries split across
// nShards independently locked shards (<= 0 picks the defaults: 256
// entries, 8 shards).
func NewLRU(maxEntries, nShards int) *LRU {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if nShards <= 0 {
		nShards = 8
	}
	if nShards > maxEntries {
		nShards = maxEntries
	}
	l := &LRU{shards: make([]*lruShard, nShards)}
	// Split maxEntries across shards, handing the remainder out one entry
	// at a time so the total capacity is exactly the requested bound.
	base, extra := maxEntries/nShards, maxEntries%nShards
	for i := range l.shards {
		cap := base
		if i < extra {
			cap++
		}
		l.shards[i] = &lruShard{
			cap:     cap,
			entries: make(map[string]*list.Element),
			order:   list.New(),
		}
	}
	return l
}

// shardOf picks a shard by an inlined FNV-1a over the key: this runs on
// every lookup, and the hash/fnv Hasher would cost two heap allocations per
// call on the serving hot path.
func (l *LRU) shardOf(key string) *lruShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return l.shards[h%uint32(len(l.shards))]
}

// Get implements Store. Kinds share one namespace: keys are already
// kind-prefixed by the registry.
func (l *LRU) Get(kind Kind, key string) (any, bool) {
	s := l.shardOf(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		l.misses.Add(1)
		l.kinds.miss(kind)
		return nil, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*lruEntry).val
	s.mu.Unlock()
	l.hits.Add(1)
	l.kinds.hit(kind)
	return v, true
}

// Put implements Store: insert or replace, evicting beyond the shard cap.
func (l *LRU) Put(kind Kind, key string, val any) {
	s := l.shardOf(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// Concurrent fills of one key (e.g. two tier promotions racing)
		// replace in place instead of growing the list.
		el.Value.(*lruEntry).val = val
		s.order.MoveToFront(el)
		s.mu.Unlock()
		l.puts.Add(1)
		return
	}
	el := s.order.PushFront(&lruEntry{key: key, kind: kind, val: val})
	s.entries[key] = el
	evicted := int64(0)
	var evictedKinds [numKinds]int64
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(s.entries, e.key)
		evictedKinds[kindIndex(e.kind)]++
		evicted++
	}
	s.mu.Unlock()
	l.puts.Add(1)
	if evicted > 0 {
		l.evictions.Add(evicted)
		for i, n := range evictedKinds {
			if n > 0 {
				l.kinds.evictions[i].Add(n)
			}
		}
	}
}

// Len implements Store.
func (l *LRU) Len() int {
	n := 0
	for _, s := range l.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge implements Store.
func (l *LRU) Purge() {
	for _, s := range l.shards {
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.order = list.New()
		s.mu.Unlock()
	}
}

// Stats implements Store. The per-kind breakdown walks the shards — Stats
// is an observability call, not a hot path.
func (l *LRU) Stats() []StoreStats {
	st := StoreStats{
		Tier:      "lru",
		Hits:      l.hits.Load(),
		Misses:    l.misses.Load(),
		Puts:      l.puts.Load(),
		Evictions: l.evictions.Load(),
	}
	for _, s := range l.shards {
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			switch el.Value.(*lruEntry).kind {
			case KindTopology:
				st.Topologies++
			case KindPlacement:
				st.Placements++
			case KindMapping:
				st.Mappings++
			}
			st.Entries++
		}
		s.mu.Unlock()
	}
	st.Kinds = l.kinds.snapshot(st.Topologies, st.Placements, st.Mappings)
	return []StoreStats{st}
}
