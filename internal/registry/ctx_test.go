package registry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mctopalg"
	"repro/internal/topo"
)

// blockingRegistry builds a registry whose inference blocks until its
// context is cancelled or the returned release function is called.
func blockingRegistry(t *testing.T, started chan<- struct{}) (*Registry, func()) {
	t.Helper()
	release := make(chan struct{})
	r := New(Options{
		MaxEntries: 16,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			if started != nil {
				started <- struct{}{}
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return fakeTopo(), nil
			}
		},
	})
	var once sync.Once
	return r, func() { once.Do(func() { close(release) }) }
}

// TestCancelMidInference is the acceptance scenario: cancelling a context
// mid-inference returns context.Canceled, and the singleflight slot is not
// leaked — the next lookup runs a fresh inference and succeeds.
func TestCancelMidInference(t *testing.T) {
	started := make(chan struct{}, 8)
	r, release := blockingRegistry(t, started)
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(ctx, "P", 1, mctopalg.Options{})
		errc <- err
	}()
	<-started // the inference is running
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled inference returned %v, want context.Canceled", err)
	}

	// The slot must be free: a fresh caller triggers a new inference (we
	// see a second started signal) and completes once released.
	done := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(context.Background(), "P", 1, mctopalg.Options{})
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no fresh inference started: singleflight slot leaked")
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("post-cancel lookup: %v", err)
	}
	if got := r.Stats().Inferences; got != 2 {
		t.Fatalf("inferences = %d, want 2 (one cancelled, one fresh)", got)
	}
}

// TestWaiterCancelLeavesOwnerRunning: a waiter that joined another
// caller's inference stops waiting with its own ctx.Err(); the owner
// finishes and populates the cache for everyone after.
func TestWaiterCancelLeavesOwnerRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	r, release := blockingRegistry(t, started)

	ownerErr := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(context.Background(), "P", 1, mctopalg.Options{})
		ownerErr <- err
	}()
	<-started

	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(waiterCtx, "P", 1, mctopalg.Options{})
		waiterErr <- err
	}()
	// Give the waiter a moment to join the in-flight call, then abandon it.
	time.Sleep(10 * time.Millisecond)
	waiterCancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter returned %v, want context.Canceled", err)
	}

	release()
	if err := <-ownerErr; err != nil {
		t.Fatalf("owner returned %v, want success", err)
	}
	// The owner's result is cached: a new lookup is a hit, no inference.
	if _, hit, err := r.LookupTopologyContext(context.Background(), "P", 1, mctopalg.Options{}); err != nil || !hit {
		t.Fatalf("post-release lookup: hit=%v err=%v, want cache hit", hit, err)
	}
	if got := r.Stats().Inferences; got != 1 {
		t.Fatalf("inferences = %d, want 1", got)
	}
}

// TestWaiterSurvivesOwnerCancel: when the computing owner's context is
// cancelled, a waiter with a healthy context does not inherit
// context.Canceled — it retries, becomes the next owner, and succeeds.
func TestWaiterSurvivesOwnerCancel(t *testing.T) {
	started := make(chan struct{}, 4)
	r, release := blockingRegistry(t, started)

	ownerCtx, ownerCancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(ownerCtx, "P", 1, mctopalg.Options{})
		ownerErr <- err
	}()
	<-started // owner's inference is running

	waiterErr := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(context.Background(), "P", 1, mctopalg.Options{})
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the wave
	ownerCancel()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner returned %v, want context.Canceled", err)
	}
	// The waiter must be promoted: a second inference starts.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter was not promoted to owner after cancellation")
	}
	release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("healthy waiter inherited the owner's fate: %v", err)
	}
	if got := r.Stats().Inferences; got != 2 {
		t.Fatalf("inferences = %d, want 2 (cancelled owner + promoted waiter)", got)
	}
}

// TestCancelRace hammers cancellation from many goroutines to give the
// race detector a surface: concurrent waiters, concurrent cancels, and a
// completing owner.
func TestCancelRace(t *testing.T) {
	r, release := blockingRegistry(t, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%2 == 0 {
				go func() {
					time.Sleep(time.Duration(i) * time.Millisecond)
					cancel()
				}()
			}
			_, err := r.TopologyContext(ctx, "P", 1, mctopalg.Options{})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	release()
	wg.Wait()
}

// TestSemaphoreAcquireHonorsCancel: a caller queued behind the compute
// bound gives up when its context fires instead of waiting for a slot.
func TestSemaphoreAcquireHonorsCancel(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	r := New(Options{
		MaxEntries:            16,
		MaxConcurrentComputes: 1,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return fakeTopo(), nil
			}
		},
	})
	// Occupy the only compute slot with key A.
	go r.TopologyContext(context.Background(), "A", 1, mctopalg.Options{})
	<-started

	// A second key must queue on the semaphore; cancel it there.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.TopologyContext(ctx, "B", 1, mctopalg.Options{})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the acquire
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued caller returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued caller did not honor cancellation")
	}
	close(release)
}

// TestPlaceBatchContextCancelled: a cancelled batch reports the context
// error rather than partial results.
func TestPlaceBatchContextCancelled(t *testing.T) {
	r := New(Options{
		MaxEntries: 16,
		InferCtx: func(ctx context.Context, platform string, seed uint64, opt mctopalg.Options) (*topo.Topology, error) {
			return fakeTopo(), nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.PlaceBatchContext(ctx, "P", 1, mctopalg.Options{}, []PlaceRequest{{Policy: "RR_CORE"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
