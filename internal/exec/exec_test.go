package exec

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mctopalg"
	"repro/internal/place"
	"repro/internal/plugins"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	cacheMu sync.Mutex
	cache   = map[string]*topo.Topology{}
)

func enriched(t *testing.T, p *sim.Platform) *topo.Topology {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tp, ok := cache[p.Name]; ok {
		return tp
	}
	m, err := machine.NewSim(p, 77)
	if err != nil {
		t.Fatal(err)
	}
	o := mctopalg.DefaultOptions()
	o.Reps = 51
	res, err := mctopalg.Infer(m, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plugins.Enrich(m, res.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache[p.Name] = tp
	return tp
}

func placed(t *testing.T, tp *topo.Topology, pol place.Policy, n int) []int {
	t.Helper()
	pl, err := place.New(tp, pol, place.Options{NThreads: n})
	if err != nil {
		t.Fatal(err)
	}
	return pl.Contexts()
}

func computeWL(cycles int64, smt float64) Workload {
	return Workload{Name: "compute", Phases: []Phase{{
		Name: "main", WorkCycles: cycles, SMTFriendly: smt,
	}}}
}

func TestComputeScalesWithCores(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := computeWL(1e9, 0.3)
	r1, err := Estimate(tp, placed(t, tp, place.ConCore, 1), wl)
	if err != nil {
		t.Fatal(err)
	}
	r10, _ := Estimate(tp, placed(t, tp, place.ConCore, 10), wl)
	speedup := float64(r1.Cycles) / float64(r10.Cycles)
	if speedup < 9.5 || speedup > 10.5 {
		t.Errorf("10 unique cores speedup = %.2f, want ~10", speedup)
	}
}

func TestSMTSharingLimitsSpeedup(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := computeWL(1e9, 0.3)
	// 20 threads on 20 unique cores vs on 10 cores (SMT pairs).
	unique, _ := Estimate(tp, placed(t, tp, place.ConCore, 20), wl)
	paired, _ := Estimate(tp, placed(t, tp, place.ConHWC, 20), wl)
	ratio := float64(paired.Cycles) / float64(unique.Cycles)
	// 10 cores * 1.3 = 13 effective vs 20 effective -> ~1.54x slower.
	if ratio < 1.4 || ratio > 1.7 {
		t.Errorf("SMT-paired/unique = %.2f, want ~1.54", ratio)
	}
}

func TestMemoryBoundPhase(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := Workload{Name: "stream", Phases: []Phase{{
		Name: "sweep", Bytes: 8 << 30, Data: DataLocal,
	}}}
	// All traffic local on both sockets: limited by per-socket local BW.
	ctxs := placed(t, tp, place.BalanceCore, 10)
	r, err := Estimate(tp, ctxs, wl)
	if err != nil {
		t.Fatal(err)
	}
	// 4 GiB per socket over ~15.9 and ~8.37 GB/s: socket 1 is the
	// bottleneck: 4.29e9 bytes / 8.37e9 B/s = 0.51 s at 2.8 GHz.
	sec := r.Seconds
	if sec < 0.4 || sec > 0.7 {
		t.Errorf("streaming time = %.3f s, want ~0.51", sec)
	}
}

func TestRemoteTrafficSlower(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	mk := func(node int) Workload {
		return Workload{Name: "w", Phases: []Phase{{Bytes: 1 << 30, Data: node}}}
	}
	// Threads on socket 0 reading node 0 (local, 15.9 GB/s) vs node 1
	// (remote over the link, 7.5 GB/s). Socket 1 would not do: on the
	// paper-faithful asymmetric Ivy its local node is its *slowest* path.
	var s0 []int
	for _, c := range tp.Socket(0).Contexts[:5] {
		s0 = append(s0, c.ID)
	}
	local, _ := Estimate(tp, s0, mk(0))
	remote, _ := Estimate(tp, s0, mk(1))
	if remote.Cycles <= local.Cycles {
		t.Errorf("remote %.0f <= local %.0f cycles", float64(remote.Cycles), float64(local.Cycles))
	}
}

func TestSyncCostScalesWithSpread(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := Workload{Name: "sync", Phases: []Phase{{
		WorkCycles: 1e6, SyncOps: 10000,
	}}}
	compact, _ := Estimate(tp, placed(t, tp, place.ConCoreHWC, 8), wl)
	var spread []int
	spread = append(spread, 0, 1, 2, 3, 10, 11, 12, 13) // both sockets
	sp, _ := Estimate(tp, spread, wl)
	if sp.Cycles <= compact.Cycles {
		t.Error("cross-socket sync should cost more than intra-socket")
	}
	// Compact sync pays the intra-socket latency per op.
	wantMin := int64(10000) * 100
	if compact.PerPhase[0].SyncCycles < wantMin {
		t.Errorf("sync cycles = %d, want >= %d", compact.PerPhase[0].SyncCycles, wantMin)
	}
}

func TestSerialAmdahl(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := Workload{Name: "amdahl", Phases: []Phase{{
		WorkCycles: 1e8, SerialCycles: 1e8,
	}}}
	r1, _ := Estimate(tp, placed(t, tp, place.ConCore, 1), wl)
	r20, _ := Estimate(tp, placed(t, tp, place.ConCore, 20), wl)
	speedup := float64(r1.Cycles) / float64(r20.Cycles)
	if speedup > 2.1 {
		t.Errorf("speedup = %.2f despite 50%% serial fraction", speedup)
	}
}

func TestEnergyOnlyOnIntel(t *testing.T) {
	ivy := enriched(t, sim.Ivy())
	opt := enriched(t, sim.Opteron())
	wl := computeWL(1e9, 0.3)
	ri, _ := Estimate(ivy, placed(t, ivy, place.ConCoreHWC, 8), wl)
	if ri.EnergyJ <= 0 {
		t.Error("Ivy should report energy")
	}
	ro, _ := Estimate(opt, placed(t, opt, place.ConCoreHWC, 8), wl)
	if ro.EnergyJ != 0 {
		t.Error("Opteron energy should be 0 (no RAPL)")
	}
}

// TestPowerPolicyTradesTimeForEnergy is the Figure 11 mechanism: the POWER
// placement is slower but consumes less energy than the performance
// placement.
func TestPowerPolicyTradesTimeForEnergy(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := Workload{Name: "kmeans-ish", Phases: []Phase{{
		WorkCycles: 2e9, SMTFriendly: 0.65, Bytes: 1 << 28, Data: DataLocal, SyncOps: 2000,
	}}, Iterations: 3}
	// Performance-oriented: 20 unique cores across both sockets; POWER
	// compacts SMT pairs onto one socket ("using fewer physical cores").
	perf, _ := Estimate(tp, placed(t, tp, place.ConCore, 20), wl)
	power, _ := Estimate(tp, placed(t, tp, place.PowerPolicy, 20), wl)
	if power.Cycles <= perf.Cycles {
		t.Error("POWER placement should be slower")
	}
	if power.EnergyJ >= perf.EnergyJ {
		t.Errorf("POWER energy %.1f J should beat performance %.1f J", power.EnergyJ, perf.EnergyJ)
	}
	slower := float64(power.Cycles) / float64(perf.Cycles)
	cheaper := power.EnergyJ / perf.EnergyJ
	if slower > 1.6 {
		t.Errorf("POWER slowdown %.2f too extreme", slower)
	}
	if cheaper > 0.98 {
		t.Errorf("POWER energy ratio %.2f, want < 1", cheaper)
	}
}

func TestBestSelectsFastest(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := computeWL(1e9, 0.2)
	cands := [][]int{
		placed(t, tp, place.ConHWC, 20),     // 10 cores
		placed(t, tp, place.ConCore, 20),    // 20 unique cores
		placed(t, tp, place.ConCoreHWC, 20), // 10 cores + 10 siblings
	}
	best, reports, err := Best(tp, cands, wl)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best = %d (%v), want 1 (unique cores)", best, reports)
	}
}

func TestEstimateValidation(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	if _, err := Estimate(tp, nil, computeWL(1, 0)); err == nil {
		t.Error("empty placement should fail")
	}
	if _, err := Estimate(tp, []int{999}, computeWL(1, 0)); err == nil {
		t.Error("bad context should fail")
	}
	// Unpinned slots are tolerated.
	if _, err := Estimate(tp, []int{-1, -1}, computeWL(1, 0)); err != nil {
		t.Errorf("unpinned slots: %v", err)
	}
}

func TestIterationsMultiply(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := computeWL(1e8, 0.3)
	one, _ := Estimate(tp, placed(t, tp, place.ConCore, 4), wl)
	wl.Iterations = 5
	five, _ := Estimate(tp, placed(t, tp, place.ConCore, 4), wl)
	if five.Cycles != 5*one.Cycles {
		t.Errorf("5 iterations = %d cycles, want %d", five.Cycles, 5*one.Cycles)
	}
}
