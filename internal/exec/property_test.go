package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/place"
	"repro/internal/sim"
)

// Model sanity properties: the execution model must be monotone in its
// inputs, or policy comparisons built on it mean nothing.

// Property: more work never takes fewer cycles (same placement).
func TestMoreWorkNeverFaster(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	ctxs := placed(t, tp, place.ConCore, 8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := int64(rng.Intn(1e9) + 1)
		wl1 := Workload{Name: "a", Phases: []Phase{{WorkCycles: w, SMTFriendly: 0.3}}}
		wl2 := Workload{Name: "b", Phases: []Phase{{WorkCycles: w * 2, SMTFriendly: 0.3}}}
		r1, err1 := Estimate(tp, ctxs, wl1)
		r2, err2 := Estimate(tp, ctxs, wl2)
		return err1 == nil && err2 == nil && r2.Cycles >= r1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for pure compute, more unique cores never hurt.
func TestMoreCoresNeverSlowerForCompute(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	wl := Workload{Name: "c", Phases: []Phase{{WorkCycles: 1e9, SMTFriendly: 0.3}}}
	prev := int64(1 << 62)
	for n := 1; n <= 20; n += 3 {
		r, err := Estimate(tp, placed(t, tp, place.ConCore, n), wl)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles > prev {
			t.Fatalf("%d cores slower than fewer: %d > %d", n, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

// Property: more traffic never streams faster.
func TestMoreBytesNeverFaster(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	ctxs := placed(t, tp, place.BalanceCore, 8)
	prev := int64(0)
	for b := int64(1 << 24); b <= 1<<30; b *= 4 {
		wl := Workload{Name: "m", Phases: []Phase{{Bytes: b, Data: DataLocal}}}
		r, err := Estimate(tp, ctxs, wl)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < prev {
			t.Fatalf("%d bytes faster than fewer: %d < %d", b, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

// Property: adding sync ops adds exactly maxLat per op for a fixed
// placement.
func TestSyncLinear(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	ctxs := placed(t, tp, place.ConCoreHWC, 8)
	mk := func(ops int64) Workload {
		return Workload{Name: "s", Phases: []Phase{{WorkCycles: 1e6, SyncOps: ops}}}
	}
	r0, _ := Estimate(tp, ctxs, mk(0))
	r1, _ := Estimate(tp, ctxs, mk(1000))
	r2, _ := Estimate(tp, ctxs, mk(2000))
	d1 := r1.Cycles - r0.Cycles
	d2 := r2.Cycles - r1.Cycles
	if d1 != d2 || d1 <= 0 {
		t.Errorf("sync not linear: deltas %d, %d", d1, d2)
	}
	maxLat := tp.MaxLatencyBetween(ctxs)
	if d1 != 1000*maxLat {
		t.Errorf("sync delta = %d, want 1000 x %d", d1, maxLat)
	}
}

// Property: energy is positive on power-capable machines and scales with
// runtime for a fixed placement.
func TestEnergyScalesWithRuntime(t *testing.T) {
	tp := enriched(t, sim.Ivy())
	ctxs := placed(t, tp, place.ConCoreHWC, 8)
	short, _ := Estimate(tp, ctxs, Workload{Name: "e", Phases: []Phase{{WorkCycles: 1e8}}})
	long, _ := Estimate(tp, ctxs, Workload{Name: "e", Phases: []Phase{{WorkCycles: 1e9}}})
	if !(0 < short.EnergyJ && short.EnergyJ < long.EnergyJ) {
		t.Errorf("energy not monotone: %g vs %g", short.EnergyJ, long.EnergyJ)
	}
}
