// Package exec is an analytical execution model for phase-structured
// parallel computations over an MCTOP topology.
//
// It is the engine behind the reproductions of Figures 9-12: given a
// placement (a set of hardware contexts) and a workload description
// (compute cycles, memory traffic and its placement, synchronization
// rounds, serial fractions), it predicts execution time and energy using
// only the measurements MCTOP carries — per-core throughput with SMT
// sharing, per-socket memory bandwidths with node contention, communication
// latencies for synchronization, and the power model.
//
// The predictions are first-order by design: the paper's evaluation claims
// (who wins, by roughly what factor, where the crossovers are) depend on
// locality, bandwidth saturation and SMT sharing, which is exactly what the
// model captures. Absolute times were never reproducible off the authors'
// hardware.
package exec

import (
	"fmt"

	"repro/internal/topo"
)

// Data placement selectors for Phase.Data.
const (
	// DataLocal places each thread's traffic on its own socket's node.
	DataLocal = -1
	// DataStriped stripes traffic across all nodes (page interleaving).
	DataStriped = -2
)

// Phase is one parallel phase of a workload.
type Phase struct {
	Name string
	// WorkCycles is the total compute demand, split across threads.
	WorkCycles int64
	// SMTFriendly is how much a core's second (third, ...) SMT context
	// adds to its throughput: 1 = scales perfectly, 0 = adds nothing,
	// negative = the sibling actively hurts (cache-blocking kernels whose
	// working sets thrash the shared L1/L2). Compute-dense kernels are
	// SMT-hostile (~0.1 to -0.2); memory-stalled code benefits (~0.5-0.8).
	SMTFriendly float64
	// Bytes is the total memory traffic, split across threads.
	Bytes int64
	// Data places the traffic: DataLocal, DataStriped, or a node id.
	Data int
	// SyncOps is the number of barrier/reduction rounds; each costs the
	// maximum communication latency among the placed threads.
	SyncOps int64
	// SerialCycles run on one thread (critical sections, allocation locks).
	SerialCycles int64
}

// Workload is a named sequence of phases, repeated Iterations times
// (default 1).
type Workload struct {
	Name       string
	Phases     []Phase
	Iterations int
}

// PhaseReport is the model's per-phase breakdown.
type PhaseReport struct {
	Name          string
	ComputeCycles int64
	MemoryCycles  int64
	SyncCycles    int64
	SerialCycles  int64
	TotalCycles   int64
}

// Report is the model's prediction for one (workload, placement) pair.
type Report struct {
	Workload string
	Cycles   int64
	Seconds  float64
	// EnergyJ is the predicted energy (0 on machines without power data,
	// matching the paper's Intel-only energy reporting).
	EnergyJ  float64
	PerPhase []PhaseReport
}

// Estimate predicts the execution of wl with threads on the given hardware
// contexts. Unpinned slots (-1) are treated as if the OS scattered them
// sequentially.
func Estimate(t *topo.Topology, ctxs []int, wl Workload) (Report, error) {
	if len(ctxs) == 0 {
		return Report{}, fmt.Errorf("exec: no threads placed")
	}
	resolved := make([]int, len(ctxs))
	seq := 0
	for i, c := range ctxs {
		if c < 0 {
			c = seq % t.NumHWContexts()
			seq++
		}
		if t.Context(c) == nil {
			return Report{}, fmt.Errorf("exec: context %d out of range", c)
		}
		resolved[i] = c
	}
	iters := wl.Iterations
	if iters <= 0 {
		iters = 1
	}

	rep := Report{Workload: wl.Name}
	maxLat := t.MaxLatencyBetween(resolved)
	for _, ph := range wl.Phases {
		pr := estimatePhase(t, resolved, ph, maxLat)
		rep.PerPhase = append(rep.PerPhase, pr)
		rep.Cycles += pr.TotalCycles * int64(iters)
	}
	freq := t.FreqGHz()
	if freq <= 0 {
		freq = 2.0
	}
	rep.Seconds = float64(rep.Cycles) / (freq * 1e9)
	rep.EnergyJ = energy(t, resolved, rep)
	return rep, nil
}

// effectiveThreads computes the placement's aggregate compute throughput
// in "full cores": SMT siblings share a core's pipeline.
func effectiveThreads(t *topo.Topology, ctxs []int, smtFriendly float64) float64 {
	perCore := map[*topo.HWCGroup]int{}
	for _, c := range ctxs {
		perCore[t.Context(c).Core]++
	}
	var eff float64
	for _, n := range perCore {
		c := 1 + smtFriendly*float64(n-1)
		if c < 0.2 {
			c = 0.2 // a core never drops below a floor, however thrashed
		}
		eff += c
	}
	return eff
}

func estimatePhase(t *topo.Topology, ctxs []int, ph Phase, maxLat int64) PhaseReport {
	pr := PhaseReport{Name: ph.Name}

	// Compute time: total work over aggregate core throughput.
	if ph.WorkCycles > 0 {
		eff := effectiveThreads(t, ctxs, ph.SMTFriendly)
		pr.ComputeCycles = int64(float64(ph.WorkCycles) / eff)
	}

	// Memory time: per-socket traffic over per-socket achievable bandwidth,
	// with destination-node contention; sockets stream in parallel, so the
	// slowest socket bounds the phase.
	if ph.Bytes > 0 {
		pr.MemoryCycles = memoryCycles(t, ctxs, ph)
	}

	pr.SyncCycles = ph.SyncOps * maxLat
	pr.SerialCycles = ph.SerialCycles

	// Compute overlaps with memory (out-of-order cores prefetch);
	// synchronization and serial sections do not.
	overlap := pr.ComputeCycles
	if pr.MemoryCycles > overlap {
		overlap = pr.MemoryCycles
	}
	pr.TotalCycles = overlap + pr.SyncCycles + pr.SerialCycles
	return pr
}

func memoryCycles(t *topo.Topology, ctxs []int, ph Phase) int64 {
	freq := t.FreqGHz()
	if freq <= 0 {
		freq = 2.0
	}
	// Traffic per socket, proportional to its thread share.
	perSocket := map[int]int{}
	for _, c := range ctxs {
		perSocket[t.Context(c).Socket.ID]++
	}
	total := len(ctxs)
	type stream struct {
		socket int
		bytes  float64
		node   int // destination node; -1 for striped
	}
	var streams []stream
	for s, n := range perSocket {
		b := float64(ph.Bytes) * float64(n) / float64(total)
		switch {
		case ph.Data == DataLocal:
			streams = append(streams, stream{s, b, t.Socket(s).Local.ID})
		case ph.Data == DataStriped:
			streams = append(streams, stream{s, b, -1})
		default:
			streams = append(streams, stream{s, b, ph.Data})
		}
	}
	// Per-destination-node demand for contention sharing.
	nodeDemand := map[int]float64{}
	for _, st := range streams {
		if st.node >= 0 {
			nodeDemand[st.node] += st.bytes
		}
	}
	var worst float64
	for _, st := range streams {
		sock := t.Socket(st.socket)
		var bw float64
		if st.node < 0 {
			// Striped: average path bandwidth over all nodes.
			var sum float64
			for n := 0; n < t.NumNodes(); n++ {
				sum += sockBW(sock, n)
			}
			bw = sum / float64(t.NumNodes())
		} else {
			bw = sockBW(sock, st.node)
			// The destination node's own bandwidth is shared by demand.
			owner := t.Node(st.node)
			if owner != nil && owner.BW > 0 && nodeDemand[st.node] > 0 {
				share := owner.BW * st.bytes / nodeDemand[st.node]
				if share < bw {
					bw = share
				}
			}
		}
		if bw <= 0 {
			bw = 1
		}
		// bytes / (GB/s) seconds -> cycles: bytes * freqGHz / bw.
		cycles := st.bytes * freq / bw
		if cycles > worst {
			worst = cycles
		}
	}
	return int64(worst)
}

func sockBW(s *topo.Socket, node int) float64 {
	if s.MemBW == nil || node >= len(s.MemBW) {
		return 8 // conservative default when the bandwidth plugin didn't run
	}
	return s.MemBW[node]
}

// energy integrates the power model over the predicted runtime the way
// RAPL would measure it: package power of the active contexts plus DRAM
// power scaled by memory intensity. (The machine's idle wall power is
// deliberately excluded — RAPL reports package and DRAM domains only.)
// Returns 0 without power measurements.
func energy(t *topo.Topology, ctxs []int, rep Report) float64 {
	pw := t.Power()
	if !pw.Available() {
		return 0
	}
	_, pkg := t.PowerEstimate(ctxs, false)
	sockets := map[int]bool{}
	for _, c := range ctxs {
		sockets[t.Context(c).Socket.ID] = true
	}
	var memCycles, totalCycles int64
	for _, ph := range rep.PerPhase {
		memCycles += ph.MemoryCycles
		totalCycles += ph.TotalCycles
	}
	memIntensity := 0.0
	if totalCycles > 0 {
		memIntensity = float64(memCycles) / float64(totalCycles)
		if memIntensity > 1 {
			memIntensity = 1
		}
	}
	dram := pw.DRAM * float64(len(sockets)) * memIntensity
	return (pkg + dram) * rep.Seconds
}

// Best evaluates a workload under several candidate placements and returns
// the index of the fastest (the auto policy-selection primitive of
// Section 7.4).
func Best(t *topo.Topology, candidates [][]int, wl Workload) (int, []Report, error) {
	if len(candidates) == 0 {
		return -1, nil, fmt.Errorf("exec: no candidates")
	}
	best := -1
	var reports []Report
	for i, ctxs := range candidates {
		r, err := Estimate(t, ctxs, wl)
		if err != nil {
			return -1, nil, err
		}
		reports = append(reports, r)
		if best == -1 || r.Cycles < reports[best].Cycles {
			best = i
		}
	}
	return best, reports, nil
}
