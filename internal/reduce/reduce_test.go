package reduce

import (
	"testing"

	"repro/internal/topo"
)

// opteronTopo builds an Opteron-like 8-socket topology with the paper's
// asymmetric interconnect (197-cycle MCM pairs, 217 direct, 300 two-hop)
// and per-link bandwidths favouring MCM siblings.
func opteronTopo(t *testing.T) *topo.Topology {
	t.Helper()
	sockGroups := make([][]int, 8)
	for s := 0; s < 8; s++ {
		for c := 0; c < 6; c++ {
			sockGroups[s] = append(sockGroups[s], s*6+c)
		}
	}
	lat := make([][]int64, 8)
	bw := make([][]float64, 8)
	direct := func(a, b int) bool { return a/2 == b/2 || a%2 == b%2 }
	for a := 0; a < 8; a++ {
		lat[a] = make([]int64, 8)
		bw[a] = make([]float64, 8)
		for b := 0; b < 8; b++ {
			switch {
			case a == b:
				lat[a][b] = 117
			case a/2 == b/2:
				lat[a][b] = 197
				bw[a][b] = 5.3
			case direct(a, b):
				lat[a][b] = 217
				bw[a][b] = 2.9
			default:
				lat[a][b] = 300
				bw[a][b] = 2.0
			}
		}
	}
	spec := topo.Spec{
		Name: "opt", Contexts: 48, Nodes: 8, SMTWays: 1, FreqGHz: 2.1,
		Levels: []topo.Level{
			{Name: "socket", Kind: topo.LevelSocket, Min: 109, Median: 117, Max: 125, Groups: sockGroups},
			{Name: "mcm", Kind: topo.LevelCross, Min: 194, Median: 197, Max: 200},
			{Name: "direct", Kind: topo.LevelCross, Min: 214, Median: 217, Max: 220},
			{Name: "far", Kind: topo.LevelCross, Min: 297, Median: 300, Max: 303},
		},
		NodeOfSocket: []int{0, 1, 2, 3, 4, 5, 6, 7},
		SocketLat:    lat,
		SocketBW:     bw,
	}
	tp, err := topo.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func allSockets() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

func TestTreeValid(t *testing.T) {
	tp := opteronTopo(t)
	plan, err := Tree(tp, allSockets(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(allSockets()); err != nil {
		t.Fatal(err)
	}
	// 8 sockets reduce in 3 rounds of 4/2/1 merges.
	if len(plan.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(plan.Rounds))
	}
	if len(plan.Rounds[0]) != 4 || len(plan.Rounds[1]) != 2 || len(plan.Rounds[2]) != 1 {
		t.Errorf("round sizes: %d/%d/%d", len(plan.Rounds[0]), len(plan.Rounds[1]), len(plan.Rounds[2]))
	}
}

// TestTreePairsMCMSiblings: the max-bandwidth pairing must use the
// 5.3 GB/s MCM links in the first round.
func TestTreePairsMCMSiblings(t *testing.T) {
	tp := opteronTopo(t)
	plan, _ := Tree(tp, allSockets(), 0)
	for _, st := range plan.Rounds[0] {
		if st.From/2 != st.To/2 {
			t.Errorf("first round pairs %d-%d, want MCM siblings", st.From, st.To)
		}
	}
}

func TestTreeDestSurvives(t *testing.T) {
	tp := opteronTopo(t)
	for _, dest := range allSockets() {
		plan, err := Tree(tp, allSockets(), dest)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(allSockets()); err != nil {
			t.Errorf("dest %d: %v", dest, err)
		}
		if plan.Dest != dest {
			t.Errorf("dest = %d, want %d", plan.Dest, dest)
		}
	}
}

func TestTreeSubsets(t *testing.T) {
	tp := opteronTopo(t)
	cases := [][]int{
		{0},
		{0, 5},
		{0, 1, 2},
		{3, 4, 5, 6, 7},
	}
	for _, sockets := range cases {
		plan, err := Tree(tp, sockets, sockets[0])
		if err != nil {
			t.Fatalf("%v: %v", sockets, err)
		}
		if err := plan.Validate(sockets); err != nil {
			t.Errorf("%v: %v", sockets, err)
		}
	}
}

func TestTreeErrors(t *testing.T) {
	tp := opteronTopo(t)
	if _, err := Tree(tp, nil, 0); err == nil {
		t.Error("empty sockets should fail")
	}
	if _, err := Tree(tp, []int{1, 2}, 0); err == nil {
		t.Error("dest outside sockets should fail")
	}
	if _, err := Tree(tp, []int{1, 1}, 1); err == nil {
		t.Error("duplicate socket should fail")
	}
	if _, err := Tree(tp, []int{99}, 99); err == nil {
		t.Error("invalid socket should fail")
	}
}

// TestOptimalTreeBeatsNaive: the merge-tree ablation — the cost-searched
// tree must beat adjacent pairing on the asymmetric Opteron, and never
// lose to the paper's per-level greedy.
func TestOptimalTreeBeatsNaive(t *testing.T) {
	tp := opteronTopo(t)
	scrambled := []int{0, 3, 5, 6, 1, 2, 7, 4}
	const bytes = 1 << 27
	optimal, err := OptimalTree(tp, scrambled, 0, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := optimal.Validate(scrambled); err != nil {
		t.Fatal(err)
	}
	greedy, err := Tree(tp, scrambled, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveTree(tp, scrambled, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Validate(scrambled); err != nil {
		t.Fatal(err)
	}
	cOpt := Cost(tp, optimal, bytes)
	cGreedy := Cost(tp, greedy, bytes)
	cNaive := Cost(tp, naive, bytes)
	if cOpt >= cNaive {
		t.Errorf("optimal tree %d cycles >= naive %d", cOpt, cNaive)
	}
	if cOpt > cGreedy {
		t.Errorf("optimal tree %d cycles > greedy %d", cOpt, cGreedy)
	}
}

func TestOptimalTreeErrors(t *testing.T) {
	tp := opteronTopo(t)
	if _, err := OptimalTree(tp, nil, 0, 1); err == nil {
		t.Error("empty sockets should fail")
	}
	if _, err := OptimalTree(tp, []int{1, 2}, 0, 1); err == nil {
		t.Error("dest outside sockets should fail")
	}
}

func TestOptimalTreeSmall(t *testing.T) {
	tp := opteronTopo(t)
	for _, sockets := range [][]int{{2}, {2, 3}, {0, 1, 4}} {
		plan, err := OptimalTree(tp, sockets, sockets[0], 1<<20)
		if err != nil {
			t.Fatalf("%v: %v", sockets, err)
		}
		if err := plan.Validate(sockets); err != nil {
			t.Errorf("%v: %v", sockets, err)
		}
	}
}

func TestCostPositiveAndMonotone(t *testing.T) {
	tp := opteronTopo(t)
	plan, _ := Tree(tp, allSockets(), 0)
	small := Cost(tp, plan, 1<<20)
	big := Cost(tp, plan, 1<<24)
	if small <= 0 || big <= small {
		t.Errorf("cost not monotone: %d vs %d", small, big)
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	bad := Plan{Dest: 0, Rounds: [][]Step{{{From: 1, To: 1}}}}
	if err := bad.Validate([]int{0, 1}); err == nil {
		t.Error("self-merge should fail validation")
	}
	bad = Plan{Dest: 0, Rounds: [][]Step{{{From: 1, To: 0}}, {{From: 1, To: 0}}}}
	if err := bad.Validate([]int{0, 1}); err == nil {
		t.Error("double absorption should fail validation")
	}
	incomplete := Plan{Dest: 0, Rounds: nil}
	if err := incomplete.Validate([]int{0, 1}); err == nil {
		t.Error("plan leaving two sockets alive should fail")
	}
}
