// Package reduce builds topology-aware cross-socket reduction trees
// (Section 5 of the MCTOP paper).
//
// In fork-join computations the local results of each socket must be
// reduced to one; when those results are sizable, who merges with whom and
// where the survivor lives dominates the reduction's cost. The policy
// implemented here follows the paper: (i) the final destination socket is
// the one that needs the data, and (ii) at each level of the binary tree,
// sockets are paired so that the bandwidth between pair members is
// maximized. A topology-agnostic adjacent-pairing baseline is included for
// the ablation benchmarks.
package reduce

import (
	"fmt"

	"repro/internal/topo"
)

// Step is one pairwise merge: socket From's data is merged into socket To,
// and To survives to the next round.
type Step struct {
	From, To int
}

// Plan is a reduction tree: rounds of parallel pairwise merges ending at
// Dest.
type Plan struct {
	Dest   int
	Rounds [][]Step
}

// Tree builds a bandwidth-maximizing reduction plan over the given sockets,
// rooted at dest. It greedily pairs the sockets with the highest
// interconnect bandwidth (falling back to lowest latency when bandwidths
// are unknown); within a pair the survivor is the socket closer to dest —
// dest itself always survives.
func Tree(t *topo.Topology, sockets []int, dest int) (Plan, error) {
	if len(sockets) == 0 {
		return Plan{}, fmt.Errorf("reduce: no sockets")
	}
	seen := map[int]bool{}
	hasDest := false
	for _, s := range sockets {
		if t.Socket(s) == nil {
			return Plan{}, fmt.Errorf("reduce: socket %d out of range", s)
		}
		if seen[s] {
			return Plan{}, fmt.Errorf("reduce: socket %d listed twice", s)
		}
		seen[s] = true
		if s == dest {
			hasDest = true
		}
	}
	if !hasDest {
		return Plan{}, fmt.Errorf("reduce: destination %d not among sockets %v", dest, sockets)
	}

	plan := Plan{Dest: dest}
	active := append([]int(nil), sockets...)
	for len(active) > 1 {
		var round []Step
		paired := map[int]bool{}
		var next []int
		// Greedy max-bandwidth matching over the remaining active sockets.
		for {
			bestA, bestB := -1, -1
			bestScore := -1.0
			for i := 0; i < len(active); i++ {
				a := active[i]
				if paired[a] {
					continue
				}
				for j := i + 1; j < len(active); j++ {
					b := active[j]
					if paired[b] {
						continue
					}
					score := pairScore(t, a, b)
					if score > bestScore {
						bestScore = score
						bestA, bestB = a, b
					}
				}
			}
			if bestA == -1 {
				break
			}
			paired[bestA], paired[bestB] = true, true
			surv, src := survivor(t, bestA, bestB, dest)
			round = append(round, Step{From: src, To: surv})
			next = append(next, surv)
		}
		// An odd socket passes through to the next round.
		for _, s := range active {
			if !paired[s] {
				next = append(next, s)
			}
		}
		plan.Rounds = append(plan.Rounds, round)
		active = next
	}
	if active[0] != dest {
		// The greedy survivor rule guarantees dest survives every pairing
		// it participates in; if dest never got paired last, add a final
		// move.
		plan.Rounds = append(plan.Rounds, []Step{{From: active[0], To: dest}})
	}
	return plan, nil
}

// pairScore ranks a socket pair: interconnect bandwidth when measured,
// otherwise inverse latency.
func pairScore(t *topo.Topology, a, b int) float64 {
	if bw := t.SocketBW(a, b); bw > 0 {
		return bw
	}
	lat := t.SocketLatency(a, b)
	if lat <= 0 {
		return 0
	}
	return 1e6 / float64(lat)
}

// survivor picks which pair member absorbs the other: dest always wins,
// otherwise the member closer (lower latency) to dest.
func survivor(t *topo.Topology, a, b, dest int) (surv, src int) {
	if a == dest {
		return a, b
	}
	if b == dest {
		return b, a
	}
	if t.SocketLatency(a, dest) <= t.SocketLatency(b, dest) {
		return a, b
	}
	return b, a
}

// OptimalTree searches all pairing/survivor structures for the plan with
// the minimum modeled cost (Cost) — data doubles every round, so the
// cheapest tree saves the fastest links for the heaviest, final merges,
// which the paper's per-level greedy cannot see. Exhaustive search is
// exponential in the socket count; it is intended for the machines of the
// paper (<= 8 sockets) and the merge-tree ablation benchmark.
func OptimalTree(t *topo.Topology, sockets []int, dest int, bytesPerSocket int64) (Plan, error) {
	if len(sockets) == 0 || len(sockets) > 8 {
		return Plan{}, fmt.Errorf("reduce: OptimalTree supports 1..8 sockets, got %d", len(sockets))
	}
	if _, err := Tree(t, sockets, dest); err != nil {
		return Plan{}, err // reuse input validation
	}
	freq := t.FreqGHz()
	if freq <= 0 {
		freq = 2.0
	}
	type node struct {
		id    int
		bytes int64
	}
	start := make([]node, len(sockets))
	for i, s := range sockets {
		start[i] = node{s, bytesPerSocket}
	}
	linkCost := func(from node, to node) int64 {
		bw := t.SocketBW(from.id, to.id)
		if bw <= 0 {
			bw = 4
		}
		return int64(float64(from.bytes) * freq / bw)
	}
	var best struct {
		cost  int64
		plan  [][]Step
		found bool
	}
	var search func(alive []node, rounds [][]Step, acc int64)
	search = func(alive []node, rounds [][]Step, acc int64) {
		if best.found && acc >= best.cost {
			return
		}
		if len(alive) == 1 {
			if alive[0].id != dest {
				return
			}
			cp := make([][]Step, len(rounds))
			for i, r := range rounds {
				cp[i] = append([]Step(nil), r...)
			}
			best.cost, best.plan, best.found = acc, cp, true
			return
		}
		// Enumerate matchings of the alive set (odd element passes).
		var match func(rem []node, steps []Step, next []node, roundCost int64)
		match = func(rem []node, steps []Step, next []node, roundCost int64) {
			if len(rem) <= 1 {
				if len(rem) == 1 {
					next = append(next, rem[0])
				}
				if len(steps) == 0 {
					return
				}
				search(next, append(rounds, steps), acc+roundCost)
				return
			}
			a := rem[0]
			for j := 1; j < len(rem); j++ {
				b := rem[j]
				rest := make([]node, 0, len(rem)-2)
				rest = append(rest, rem[1:j]...)
				rest = append(rest, rem[j+1:]...)
				// Try both survivors (dest must survive).
				for _, sv := range [][2]node{{a, b}, {b, a}} {
					surv, src := sv[0], sv[1]
					if src.id == dest {
						continue
					}
					c := linkCost(src, surv)
					rc := roundCost
					if c > rc {
						rc = c
					}
					merged := node{surv.id, surv.bytes + src.bytes}
					match(rest, append(steps, Step{From: src.id, To: surv.id}),
						append(next, merged), rc)
				}
			}
			// The odd passthrough: a sits this round out.
			if len(rem)%2 == 1 {
				match(rem[1:], steps, append(next, a), roundCost)
			}
		}
		match(alive, nil, nil, 0)
	}
	search(start, nil, 0)
	if !best.found {
		return Plan{}, fmt.Errorf("reduce: no plan found (internal error)")
	}
	return Plan{Dest: dest, Rounds: best.plan}, nil
}

// NaiveTree is the topology-agnostic baseline: adjacent pairing in list
// order, lower-id survivor, final result moved to dest. This is what a
// portable-but-blind implementation does.
func NaiveTree(t *topo.Topology, sockets []int, dest int) (Plan, error) {
	if len(sockets) == 0 {
		return Plan{}, fmt.Errorf("reduce: no sockets")
	}
	plan := Plan{Dest: dest}
	active := append([]int(nil), sockets...)
	for len(active) > 1 {
		var round []Step
		var next []int
		for i := 0; i+1 < len(active); i += 2 {
			round = append(round, Step{From: active[i+1], To: active[i]})
			next = append(next, active[i])
		}
		if len(active)%2 == 1 {
			next = append(next, active[len(active)-1])
		}
		plan.Rounds = append(plan.Rounds, round)
		active = next
	}
	if active[0] != dest {
		plan.Rounds = append(plan.Rounds, []Step{{From: active[0], To: dest}})
	}
	return plan, nil
}

// Cost models a plan's execution time in cycles for the given bytes per
// participant: rounds run serially, the pairs of a round in parallel, and
// each merge streams its bytes over the pair's interconnect path.
func Cost(t *topo.Topology, p Plan, bytesPerSocket int64) int64 {
	freq := t.FreqGHz()
	if freq <= 0 {
		freq = 2.0
	}
	carried := map[int]int64{}
	var total int64
	for _, s := range t.Sockets() {
		carried[s.ID] = bytesPerSocket
	}
	for _, round := range p.Rounds {
		var worst int64
		for _, st := range round {
			bytes := carried[st.From]
			bw := t.SocketBW(st.From, st.To)
			if bw <= 0 {
				bw = 4
			}
			cycles := int64(float64(bytes) * freq / bw)
			if cycles > worst {
				worst = cycles
			}
			carried[st.To] += carried[st.From]
			carried[st.From] = 0
		}
		total += worst
	}
	return total
}

// Validate checks that a plan reduces every participant exactly once per
// absorption and terminates at Dest.
func (p Plan) Validate(sockets []int) error {
	alive := map[int]bool{}
	for _, s := range sockets {
		alive[s] = true
	}
	for ri, round := range p.Rounds {
		for _, st := range round {
			if !alive[st.From] || !alive[st.To] {
				return fmt.Errorf("reduce: round %d merges dead socket (%d -> %d)", ri, st.From, st.To)
			}
			if st.From == st.To {
				return fmt.Errorf("reduce: round %d merges socket %d with itself", ri, st.From)
			}
			alive[st.From] = false
		}
	}
	count := 0
	last := -1
	for s, a := range alive {
		if a {
			count++
			last = s
		}
	}
	if count != 1 || last != p.Dest {
		return fmt.Errorf("reduce: plan leaves %d sockets alive (last %d), want only dest %d", count, last, p.Dest)
	}
	return nil
}
