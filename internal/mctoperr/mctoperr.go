// Package mctoperr defines the sentinel errors of the MCTOP client API.
//
// Every user-correctable failure across the library wraps exactly one of
// these sentinels, so callers branch with errors.Is/errors.As instead of
// string matching, and servers map failures to transport statuses in one
// place (cmd/mctopd does: 400, 404, 413, 503). The package sits at the
// bottom of the dependency graph — it imports nothing — so every layer
// (sim, place, registry, the facade, the daemon) can wrap its sentinels
// without cycles.
package mctoperr

import "errors"

var (
	// ErrUnknownPlatform marks a request for a platform name that is not
	// one of the five simulated machines. Servers map it to 404.
	ErrUnknownPlatform = errors.New("unknown platform")

	// ErrUnknownPolicy marks a placement request naming a policy that is
	// neither one of the 12 paper policies nor a registered custom policy.
	// Servers map it to 404.
	ErrUnknownPolicy = errors.New("unknown policy")

	// ErrInvalidRequest marks a malformed or unsatisfiable request the
	// caller can correct: negative thread counts, out-of-range reps, the
	// POWER policy on a machine without power measurements, a combinator
	// referencing a socket the topology does not have. Servers map it
	// to 400.
	ErrInvalidRequest = errors.New("invalid request")

	// ErrTooLarge marks a request that exceeds a configured size bound
	// (batch length, body bytes). Distinct from ErrInvalidRequest so
	// servers can answer 413 and clients can shrink-and-retry.
	ErrTooLarge = errors.New("request too large")

	// ErrSaturated marks a request shed by backpressure: the server is at
	// its concurrent-request bound and the caller should retry later.
	// Servers map it to 503 with a Retry-After hint.
	ErrSaturated = errors.New("server saturated")
)
