package mesi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testTopo is a small machine: 2 sockets x 2 cores x 2 SMT = 8 contexts.
// Context numbering is Intel-style: ctx i and i+4 are siblings.
type testTopo struct{}

func (testTopo) NumContexts() int { return 8 }
func (testTopo) CoreOf(ctx int) int {
	return ctx % 4
}
func (testTopo) SocketOf(ctx int) int {
	return (ctx % 4) / 2
}

// testCost charges fixed, easily recognizable costs.
type testCost struct{}

func (testCost) HitCost(op Op) int64 {
	if op == Load {
		return 4
	}
	return 12
}
func (testCost) SameCoreTransfer(Op) int64                      { return 28 }
func (testCost) SameSocketTransfer(_ Op, _, _, _ int) int64     { return 112 }
func (testCost) CrossSocketTransfer(_ Op, _, _, _, _ int) int64 { return 308 }
func (testCost) MemoryAccess(_ Op, _ int, _ uint64) int64       { return 250 }
func (testCost) UpgradeCost(_ Op, cross bool) int64 {
	if cross {
		return 200
	}
	return 80
}

func newSys() *System { return New(testTopo{}, testCost{}) }

func TestColdMiss(t *testing.T) {
	s := newSys()
	if c := s.Access(0, 1, Load); c != 250 {
		t.Errorf("cold load cost = %d, want 250", c)
	}
	st, owner, _ := s.StateOf(1)
	if st != Exclusive || owner != 0 {
		t.Errorf("after cold load: state=%v owner=%d, want E/0", st, owner)
	}
	if c := s.Access(0, 2, Store); c != 250 {
		t.Errorf("cold store cost = %d, want 250", c)
	}
	if st, _, _ := s.StateOf(2); st != Modified {
		t.Errorf("after cold store: state=%v, want M", st)
	}
}

func TestHitAfterOwnAccess(t *testing.T) {
	s := newSys()
	s.Access(0, 1, Store)
	if c := s.Access(0, 1, Load); c != 4 {
		t.Errorf("load hit cost = %d, want 4", c)
	}
	if c := s.Access(0, 1, CAS); c != 12 {
		t.Errorf("CAS hit cost = %d, want 12", c)
	}
}

// TestRFOWalkthrough reproduces Figure 4 of the paper: a line Modified in
// core o's caches; core r issues an RFO. The request misses privately, finds
// the owner, invalidates it, and is granted ownership.
func TestRFOWalkthrough(t *testing.T) {
	s := newSys()
	// Context 1 = core 1 = socket 0 brings the line to M.
	s.Access(1, 7, CAS)
	// Context 0 = core 0 = socket 0: same-socket RFO.
	if c := s.Access(0, 7, CAS); c != 112 {
		t.Errorf("same-socket RFO cost = %d, want 112", c)
	}
	st, owner, _ := s.StateOf(7)
	if st != Modified || owner != 0 {
		t.Errorf("after RFO: state=%v owner=%d, want M/0", st, owner)
	}
	// Context 2 = core 2 = socket 1: cross-socket RFO.
	if c := s.Access(2, 7, CAS); c != 308 {
		t.Errorf("cross-socket RFO cost = %d, want 308", c)
	}
}

// TestSMTSiblingCAS verifies the same-core latency of the lock-step
// measurement: contexts 0 and 4 share core 0.
func TestSMTSiblingCAS(t *testing.T) {
	s := newSys()
	s.Access(0, 9, CAS)
	if c := s.Access(4, 9, CAS); c != 28 {
		t.Errorf("SMT sibling CAS = %d, want 28", c)
	}
	// Ping back.
	if c := s.Access(0, 9, CAS); c != 28 {
		t.Errorf("SMT sibling CAS back = %d, want 28", c)
	}
	// Same context repeating: plain hit.
	if c := s.Access(0, 9, CAS); c != 12 {
		t.Errorf("own repeated CAS = %d, want 12", c)
	}
}

func TestLoadDowngradesToShared(t *testing.T) {
	s := newSys()
	s.Access(0, 3, Store) // core 0 owns M
	if c := s.Access(1, 3, Load); c != 112 {
		t.Errorf("same-socket load from M = %d, want 112", c)
	}
	st, owner, sharers := s.StateOf(3)
	if st != Shared || owner != -1 {
		t.Errorf("state=%v owner=%d, want S/-1", st, owner)
	}
	if len(sharers) != 2 || sharers[0] != 0 || sharers[1] != 1 {
		t.Errorf("sharers = %v, want [0 1]", sharers)
	}
	// Both sharers now hit locally.
	if c := s.Access(0, 3, Load); c != 4 {
		t.Errorf("sharer 0 load = %d, want 4", c)
	}
	if c := s.Access(1, 3, Load); c != 4 {
		t.Errorf("sharer 1 load = %d, want 4", c)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	s := newSys()
	s.Access(0, 3, Store)
	s.Access(1, 3, Load) // S in cores 0,1 (socket 0)
	// Core 1 holds a copy: pure upgrade, local sharers only.
	if c := s.Access(1, 3, Store); c != 80 {
		t.Errorf("local upgrade cost = %d, want 80", c)
	}
	st, owner, _ := s.StateOf(3)
	if st != Modified || owner != 1 {
		t.Errorf("after upgrade: %v/%d, want M/1", st, owner)
	}
}

func TestUpgradeCrossSocket(t *testing.T) {
	s := newSys()
	s.Access(0, 3, Store)
	s.Access(2, 3, Load) // S in core 0 (socket 0) and core 2 (socket 1)
	// Core 0 upgrades; a sharer is remote.
	if c := s.Access(0, 3, Store); c != 200 {
		t.Errorf("cross-socket upgrade cost = %d, want 200", c)
	}
}

func TestStoreToSharedWithoutCopy(t *testing.T) {
	s := newSys()
	s.Access(0, 3, Store)
	s.Access(1, 3, Load) // S in cores 0,1
	// Core 3 (socket 1) stores without holding a copy: upgrade + data.
	c := s.Access(3, 3, Store)
	if c <= 200 {
		t.Errorf("remote store to S = %d, want > 200 (upgrade + data)", c)
	}
	st, owner, _ := s.StateOf(3)
	if st != Modified || owner != 3 {
		t.Errorf("after store: %v/%d, want M/3", st, owner)
	}
}

// TestDeterminism: the same access sequence always produces the same costs.
func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := newSys()
		rng := rand.New(rand.NewSource(42))
		var costs []int64
		for i := 0; i < 2000; i++ {
			ctx := rng.Intn(8)
			addr := uint64(rng.Intn(16))
			op := Op(rng.Intn(3))
			costs = append(costs, s.Access(ctx, addr, op))
		}
		return costs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: cost %d != %d", i, a[i], b[i])
		}
	}
}

// TestLockStepDeterminism: the paper's key observation — in the absence of
// contention, ping-ponging a line between two fixed contexts settles into a
// constant per-access cost.
func TestLockStepDeterminism(t *testing.T) {
	s := newSys()
	pairs := [][2]int{{0, 4}, {0, 1}, {0, 2}, {1, 3}}
	want := []int64{28, 112, 308, 308}
	for k, p := range pairs {
		s.Invalidate(5)
		s.Access(p[0], 5, CAS) // warm
		for i := 0; i < 10; i++ {
			who := p[i%2]
			c := s.Access(who, 5, CAS)
			if i > 0 && c != want[k] {
				t.Errorf("pair %v iter %d: cost %d, want %d", p, i, c, want[k])
			}
		}
	}
}

// Property test: invariants hold under arbitrary access sequences.
func TestInvariantsUnderRandomAccess(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		s := newSys()
		rng := rand.New(rand.NewSource(seed))
		steps := int(n%1000) + 1
		for i := 0; i < steps; i++ {
			ctx := rng.Intn(8)
			addr := uint64(rng.Intn(8))
			op := Op(rng.Intn(3))
			c := s.Access(ctx, addr, op)
			if c <= 0 {
				return false
			}
			if rng.Intn(50) == 0 {
				s.Invalidate(uint64(rng.Intn(8)))
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after any Store/CAS the line is Modified and owned by the
// storing context.
func TestStoreAlwaysTakesOwnership(t *testing.T) {
	f := func(seed int64) bool {
		s := newSys()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			ctx := rng.Intn(8)
			addr := uint64(rng.Intn(4))
			s.Access(ctx, addr, Op(rng.Intn(3)))
		}
		ctx := rng.Intn(8)
		s.Access(ctx, 2, Store)
		st, owner, _ := s.StateOf(2)
		return st == Modified && owner == ctx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResetAndStats(t *testing.T) {
	s := newSys()
	s.Access(0, 1, Load)
	s.Access(1, 1, Load)
	s.Access(1, 1, Load)
	if s.Misses != 1 || s.Transfers != 1 || s.Hits != 1 {
		t.Errorf("stats = misses %d transfers %d hits %d, want 1/1/1", s.Misses, s.Transfers, s.Hits)
	}
	s.Reset()
	if s.Misses != 0 || s.Hits != 0 || s.Transfers != 0 || s.MemAccesses != 0 {
		t.Error("Reset did not clear statistics")
	}
	if st, _, _ := s.StateOf(1); st != Invalid {
		t.Error("Reset did not invalidate lines")
	}
}

func TestAccessPanicsOnBadContext(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range context")
		}
	}()
	newSys().Access(99, 0, Load)
}

func TestStateStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("State strings wrong")
	}
	if Load.String() != "Load" || Store.String() != "Store" || CAS.String() != "CAS" {
		t.Error("Op strings wrong")
	}
}
