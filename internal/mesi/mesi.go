// Package mesi implements a deterministic MESI cache-coherence engine.
//
// The MCTOP paper (EuroSys '17) rests on the observation that hardware
// cache-coherence protocols are deterministic in the absence of contention:
// a given request type, for a line in a given state and placement, always
// takes the same steps and therefore the same time (Section 3, Observation
// 1, and the RFO walk-through of Figure 4). This package models exactly
// that: per-core private caches, per-socket last-level caches, and a MESI
// state machine whose transitions are charged deterministic cycle costs
// supplied by a platform-specific CostModel.
//
// The engine is used by the machine simulator (internal/sim) to answer the
// latency probes of MCTOP-ALG and by the lock-contention simulator
// (internal/contend) to model spinlock cache-line traffic.
package mesi

import (
	"fmt"
	"sort"
)

// State is the MESI state of a cache line in a particular cache.
type State uint8

const (
	// Invalid: the line is not cached anywhere (engine-wide view).
	Invalid State = iota
	// Shared: one or more cores hold read-only copies; memory is clean.
	Shared
	// Exclusive: exactly one core holds the only, clean copy.
	Exclusive
	// Modified: exactly one core holds the only, dirty copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Op is the kind of memory access performed on a line.
type Op uint8

const (
	// Load is a plain read (request-for-share on a miss).
	Load Op = iota
	// Store is a plain write (request-for-ownership on a miss or upgrade).
	Store
	// CAS is an atomic read-modify-write. For coherence purposes it behaves
	// like Store — it brings the line into the Modified state — but costs
	// may differ (atomics pay a small fixed overhead even on a hit).
	CAS
)

func (o Op) String() string {
	switch o {
	case Load:
		return "Load"
	case Store:
		return "Store"
	case CAS:
		return "CAS"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Topology tells the engine which core and socket every hardware context
// belongs to. Private caches are per core (SMT contexts of a core share
// them); LLCs are per socket.
type Topology interface {
	NumContexts() int
	CoreOf(ctx int) int
	SocketOf(ctx int) int
}

// CostModel supplies the deterministic cycle costs of coherence actions for
// a specific platform. All methods must be pure functions of their
// arguments. The transfer costs are end-to-end: they already include the
// private-cache misses, the LLC or directory lookup, the invalidation of
// the previous owner and the data response, matching what a software
// latency probe observes (e.g. 28 / ~112 / ~308 cycles on the paper's
// 2-socket Ivy Bridge).
type CostModel interface {
	// HitCost is a hit in the requester core's private cache hierarchy.
	HitCost(op Op) int64
	// SameCoreTransfer is the observed latency when the previous owner is
	// the other SMT context of the same core (the "28 cycles" diagonal of
	// Figure 6; elevated above the L1 latency because both threads execute
	// on one core).
	SameCoreTransfer(op Op) int64
	// SameSocketTransfer is a cache-to-cache transfer between two cores of
	// one socket. The per-(core,core) argument pair allows platforms to
	// model deterministic on-die distance effects (ring/mesh position).
	SameSocketTransfer(op Op, socket, fromCore, toCore int) int64
	// CrossSocketTransfer is a transfer between cores of different sockets,
	// routed over the interconnect (possibly multiple hops). fromCore and
	// toCore allow deterministic per-pair spread; toCore may be -1 when the
	// exact remote core is unknown (e.g. fetching from a remote LLC).
	CrossSocketTransfer(op Op, fromSocket, fromCore, toSocket, toCore int) int64
	// MemoryAccess is a miss served from the home node's memory.
	MemoryAccess(op Op, socket int, line uint64) int64
	// UpgradeCost is the cost of invalidating sharers for a Store/CAS on a
	// Shared line; crossSocket reports whether any sharer is remote.
	UpgradeCost(op Op, crossSocket bool) int64
}

// lineState is the engine-wide view of one cache line.
type lineState struct {
	state       State
	ownerCtx    int // context that performed the last M/E-granting access
	ownerCore   int
	ownerSock   int
	sharerCores map[int]int // core -> socket of cores holding S copies
}

// System is a MESI coherence engine over a fixed topology.
type System struct {
	topo  Topology
	cost  CostModel
	lines map[uint64]*lineState

	// Statistics, useful for tests and the contention simulator.
	Hits, Misses, Transfers, MemAccesses uint64
}

// New returns an empty coherence engine. All lines start Invalid.
func New(topo Topology, cost CostModel) *System {
	return &System{topo: topo, cost: cost, lines: make(map[uint64]*lineState)}
}

// Reset invalidates every line and clears statistics.
func (s *System) Reset() {
	s.lines = make(map[uint64]*lineState)
	s.Hits, s.Misses, s.Transfers, s.MemAccesses = 0, 0, 0, 0
}

func (s *System) line(addr uint64) *lineState {
	l, ok := s.lines[addr]
	if !ok {
		l = &lineState{state: Invalid, ownerCtx: -1, ownerCore: -1, ownerSock: -1}
		s.lines[addr] = l
	}
	return l
}

// Access performs op on line addr from hardware context ctx, updates the
// coherence state, and returns the deterministic cycle cost of the access.
func (s *System) Access(ctx int, addr uint64, op Op) int64 {
	if ctx < 0 || ctx >= s.topo.NumContexts() {
		panic(fmt.Sprintf("mesi: context %d out of range [0,%d)", ctx, s.topo.NumContexts()))
	}
	core := s.topo.CoreOf(ctx)
	sock := s.topo.SocketOf(ctx)
	l := s.line(addr)

	switch op {
	case Load:
		return s.load(l, ctx, core, sock, addr)
	case Store, CAS:
		return s.store(l, ctx, core, sock, addr, op)
	}
	panic(fmt.Sprintf("mesi: unknown op %v", op))
}

func (s *System) load(l *lineState, ctx, core, sock int, addr uint64) int64 {
	switch l.state {
	case Modified, Exclusive:
		if l.ownerCore == core {
			// Hit in the core's private cache (possibly brought in by the
			// SMT sibling — private caches are shared between siblings).
			s.Hits++
			l.ownerCtx = ctx
			return s.cost.HitCost(Load)
		}
		// Cache-to-cache transfer; the line is downgraded to Shared and the
		// dirty data (if Modified) written back.
		s.Transfers++
		var c int64
		if l.ownerSock == sock {
			c = s.cost.SameSocketTransfer(Load, sock, l.ownerCore, core)
		} else {
			c = s.cost.CrossSocketTransfer(Load, sock, core, l.ownerSock, l.ownerCore)
		}
		prevCore, prevSock := l.ownerCore, l.ownerSock
		l.state = Shared
		l.sharerCores = map[int]int{prevCore: prevSock, core: sock}
		l.ownerCtx, l.ownerCore, l.ownerSock = -1, -1, -1
		return c

	case Shared:
		if _, ok := l.sharerCores[core]; ok {
			s.Hits++
			return s.cost.HitCost(Load)
		}
		// Fetch a copy: from the LLC of the local socket if any sharer is
		// local, otherwise from the nearest remote sharer's socket.
		s.Transfers++
		var c int64
		if sharerSock, local := s.nearestSharer(l, sock); local {
			c = s.cost.SameSocketTransfer(Load, sock, s.sharerCoreOn(l, sock), core)
		} else {
			c = s.cost.CrossSocketTransfer(Load, sock, core, sharerSock, s.sharerCoreOn(l, sharerSock))
		}
		l.sharerCores[core] = sock
		return c

	default: // Invalid
		s.Misses++
		s.MemAccesses++
		c := s.cost.MemoryAccess(Load, sock, addr)
		l.state = Exclusive
		l.ownerCtx, l.ownerCore, l.ownerSock = ctx, core, sock
		return c
	}
}

func (s *System) store(l *lineState, ctx, core, sock int, addr uint64, op Op) int64 {
	switch l.state {
	case Modified, Exclusive:
		if l.ownerCore == core {
			var c int64
			if op == CAS && l.ownerCtx != ctx && l.ownerCtx >= 0 {
				// SMT sibling ping-pong on one core: this is the latency the
				// lock-step measurement of Figure 5 observes for same-core
				// context pairs.
				c = s.cost.SameCoreTransfer(op)
			} else {
				c = s.cost.HitCost(op)
			}
			s.Hits++
			l.state = Modified
			l.ownerCtx = ctx
			return c
		}
		// RFO: invalidate the remote owner's copy and take the line.
		s.Transfers++
		var c int64
		if l.ownerSock == sock {
			c = s.cost.SameSocketTransfer(op, sock, l.ownerCore, core)
		} else {
			c = s.cost.CrossSocketTransfer(op, sock, core, l.ownerSock, l.ownerCore)
		}
		l.state = Modified
		l.ownerCtx, l.ownerCore, l.ownerSock = ctx, core, sock
		l.sharerCores = nil
		return c

	case Shared:
		// Upgrade: invalidate all sharers.
		s.Transfers++
		cross := false
		for _, shSock := range l.sharerCores {
			if shSock != sock {
				cross = true
				break
			}
		}
		_, held := l.sharerCores[core]
		c := s.cost.UpgradeCost(op, cross)
		if !held {
			// Also needs the data, not just permissions.
			if shSock, local := s.nearestSharer(l, sock); local {
				c += s.cost.SameSocketTransfer(op, sock, s.sharerCoreOn(l, sock), core) / 2
			} else {
				c += s.cost.CrossSocketTransfer(op, sock, core, shSock, s.sharerCoreOn(l, shSock)) / 2
			}
		}
		l.state = Modified
		l.ownerCtx, l.ownerCore, l.ownerSock = ctx, core, sock
		l.sharerCores = nil
		return c

	default: // Invalid
		s.Misses++
		s.MemAccesses++
		c := s.cost.MemoryAccess(op, sock, addr)
		l.state = Modified
		l.ownerCtx, l.ownerCore, l.ownerSock = ctx, core, sock
		return c
	}
}

// nearestSharer returns the socket of a sharer, preferring the requester's
// own socket; local reports whether a sharer exists on the requester's
// socket.
func (s *System) nearestSharer(l *lineState, sock int) (sharerSock int, local bool) {
	sharerSock = -1
	for _, shSock := range l.sharerCores {
		if shSock == sock {
			return sock, true
		}
		if sharerSock == -1 || shSock < sharerSock {
			sharerSock = shSock
		}
	}
	return sharerSock, false
}

// sharerCoreOn returns the lowest-numbered sharer core on the given socket,
// or -1 if that socket holds no copy.
func (s *System) sharerCoreOn(l *lineState, sock int) int {
	best := -1
	for core, shSock := range l.sharerCores {
		if shSock == sock && (best == -1 || core < best) {
			best = core
		}
	}
	return best
}

// StateOf returns the engine-wide state of a line, its owning context (or
// -1) and the sorted list of sharer cores (for Shared lines).
func (s *System) StateOf(addr uint64) (state State, ownerCtx int, sharerCores []int) {
	l, ok := s.lines[addr]
	if !ok {
		return Invalid, -1, nil
	}
	for core := range l.sharerCores {
		sharerCores = append(sharerCores, core)
	}
	sort.Ints(sharerCores)
	return l.state, l.ownerCtx, sharerCores
}

// Invalidate flushes a line from all caches (back to Invalid).
func (s *System) Invalidate(addr uint64) {
	delete(s.lines, addr)
}

// CheckInvariants validates the global MESI invariants:
//   - M/E lines have exactly one owner and no sharers;
//   - S lines have at least one sharer and no owner;
//   - I lines are not tracked at all.
//
// It returns a descriptive error for the first violation found.
func (s *System) CheckInvariants() error {
	for addr, l := range s.lines {
		switch l.state {
		case Modified, Exclusive:
			if l.ownerCore < 0 || l.ownerCtx < 0 {
				return fmt.Errorf("mesi: line %#x in %v without owner", addr, l.state)
			}
			if len(l.sharerCores) != 0 {
				return fmt.Errorf("mesi: line %#x in %v with %d sharers", addr, l.state, len(l.sharerCores))
			}
			if got := s.topo.CoreOf(l.ownerCtx); got != l.ownerCore {
				return fmt.Errorf("mesi: line %#x owner core mismatch: ctx %d is core %d, recorded %d",
					addr, l.ownerCtx, got, l.ownerCore)
			}
		case Shared:
			if len(l.sharerCores) == 0 {
				return fmt.Errorf("mesi: line %#x Shared with no sharers", addr)
			}
			if l.ownerCtx != -1 {
				return fmt.Errorf("mesi: line %#x Shared with owner %d", addr, l.ownerCtx)
			}
		case Invalid:
			return fmt.Errorf("mesi: line %#x tracked in Invalid state", addr)
		}
	}
	return nil
}
