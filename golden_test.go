package mctop

// Golden-fixture harness: the five simulated platforms are inferred at a
// fixed seed and compared byte-for-byte against checked-in description
// files under internal/topo/testdata. The fixtures pin down the whole
// pipeline — simulator noise, parallel measurement, clustering, role
// assignment, plugin enrichment, serialization — so any unintended change
// to inference output shows up as a fixture diff.
//
// Regenerate after an *intended* change with:
//
//	go test -run TestGoldenFixtures -update-golden

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topo"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden topology fixtures")

const goldenSeed = 42

func goldenOptions() Options { return Options{Reps: 51} }

func goldenPath(platform string) string {
	return filepath.Join("internal", "topo", "testdata", strings.ToLower(platform)+".mctop")
}

func encodeSpec(t *testing.T, top *Topology) []byte {
	t.Helper()
	var buf bytes.Buffer
	spec := top.Spec()
	if err := topo.Encode(&buf, &spec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenFixtures(t *testing.T) {
	for _, name := range Platforms() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			top, _, err := InferPlatformDetailed(name, goldenSeed, goldenOptions())
			if err != nil {
				t.Fatal(err)
			}
			got := encodeSpec(t, top)
			path := goldenPath(name)

			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("inferred %s topology diverges from %s:\n%s",
					name, path, firstDiff(got, want))
			}
		})
	}
}

// TestGoldenRoundTrip asserts Load(Save(x)) == x at the byte level for every
// fixture: decoding a description file and re-encoding it must reproduce the
// file exactly ("created once, then used to load the topology", Section 2).
func TestGoldenRoundTrip(t *testing.T) {
	for _, name := range Platforms() {
		name := name
		t.Run(name, func(t *testing.T) {
			path := goldenPath(name)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
			}
			top, err := Load(path)
			if err != nil {
				t.Fatalf("fixture does not load: %v", err)
			}
			if !bytes.Equal(encodeSpec(t, top), want) {
				t.Fatal("Load + re-encode does not reproduce the fixture bytes")
			}

			// And through Save: a full file-system round trip.
			out := filepath.Join(t.TempDir(), "rt.mctop")
			if err := Save(out, top); err != nil {
				t.Fatal(err)
			}
			saved, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(saved, want) {
				t.Fatal("Save does not reproduce the fixture bytes")
			}
		})
	}
}

// TestGoldenStability re-infers one platform twice in-process and across
// parallelism settings: fixtures are only meaningful if inference is a pure
// function of (platform, seed, options).
func TestGoldenStability(t *testing.T) {
	a, _, err := InferPlatformDetailed("Ivy", goldenSeed, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := InferPlatformDetailed("Ivy", goldenSeed, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSpec(t, a), encodeSpec(t, b)) {
		t.Fatal("two inferences of the same (platform, seed, options) differ")
	}
	seq := goldenOptions()
	seq.Parallelism = 1
	c, _, err := InferPlatformDetailed("Ivy", goldenSeed, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSpec(t, a), encodeSpec(t, c)) {
		t.Fatal("parallel and sequential inference produce different fixtures")
	}
}

// firstDiff renders the first differing line of two description files.
func firstDiff(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
